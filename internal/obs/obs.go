// Package obs is the stage-level profiler for the R2T pipeline: wall-clock
// durations per pipeline stage (parse, plan, join execution, truncation
// build, LP solving, noise) plus hot-path counters (simplex iterations and
// pivots, grid-solver redundancy eliminations, early-stop prunes, executor
// row traffic, build-index cache hits, arena bytes).
//
// The design follows internal/fault's cheap-disabled-path discipline: every
// Recorder method is safe — and allocation-free — on a nil receiver, so the
// pipeline threads a single *Recorder pointer everywhere and passes nil when
// profiling is off. The disabled path is one nil check per call site; the
// named gate in scripts/check.sh (TestRecorderDisabledAllocFree,
// BenchmarkRecorderDisabled) asserts it allocates nothing.
//
// Profiling is pure observation. A Recorder only ever accumulates into
// atomics; it never feeds anything back into the computation, so enabling it
// cannot change a released estimate (the PR 4 bit-equality gates run with
// profiling on to enforce exactly that).
//
// Privacy posture: stage durations and counters are data-dependent and
// therefore NON-PRIVATE diagnostics, exactly like Answer.TrueAnswer. They are
// for the data curator and the service operator; they must never cross a
// privacy boundary alongside a release (DESIGN.md §11).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one timed section of the pipeline. Stages are disjoint
// wall-clock intervals within a single query evaluation, so their durations
// sum to (slightly less than) the end-to-end duration; concurrent work inside
// a stage (parallel probe chunks, race workers) is covered by the stage's
// wall-clock span, not double-counted.
type Stage int

// Pipeline stages, in pipeline order.
const (
	StageParse           Stage = iota // SQL text → AST
	StagePlan                         // AST → completed-join plan
	StageExec                         // join evaluation with provenance
	StageTruncationBuild              // occurrence form + LP structure build
	StageLPSolve                      // the R2T races (LP solves, dual bounds)
	StageNoise                        // Laplace draws
	NumStages
)

var stageNames = [NumStages]string{
	"parse", "plan", "exec", "truncation-build", "lp-solve", "noise",
}

// String returns the stage's stable label (used in metrics and logs).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Counter identifies one accumulated count.
type Counter int

// Pipeline counters.
const (
	CtrSimplexIters      Counter = iota // simplex iterations (pricing passes + flips + pivots)
	CtrSimplexPivots                    // basis-changing pivots only
	CtrLPComponents                     // independent LP blocks solved
	CtrRedundantSkips                   // τ-monotone redundancy eliminations (rows/components skipped)
	CtrEarlyStopPrune                   // races killed by a dual bound before an exact solve
	CtrExecRowsProbed                   // assignments entering a join step
	CtrExecRowsOut                      // assignments leaving a join step
	CtrIndexCacheHit                    // build-side index served from the table cache
	CtrIndexCacheMiss                   // build-side index built fresh
	CtrIndexCacheEvict                  // build-side index evicted by the per-table LRU cap
	CtrIndexExtendedHit                 // cache hit on an index incrementally extended across Appends (multi-part)
	CtrArenaBytes                       // bytes of row-arena slab allocated
	CtrJoinCoreHit                      // probe pass skipped: join core served from the DB cache
	CtrJoinCoreMiss                     // join core evaluated fresh (cold, stale, or sharing off)
	CtrPartitionFastPath                // truncators served by the closed-form partition path (no LP)
	CtrPartitionValues                  // Value(τ) evaluations answered by the partition path
	NumCounters
)

var counterNames = [NumCounters]string{
	"simplex_iters", "simplex_pivots", "lp_components", "grid_redundant_skips",
	"earlystop_prunes", "exec_rows_probed", "exec_rows_emitted",
	"index_cache_hits", "index_cache_misses", "index_cache_evictions",
	"index_cache_extended_hits", "arena_bytes",
	"join_core_hits", "join_core_misses",
	"partition_fastpaths", "partition_values",
}

// String returns the counter's stable label.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// Recorder accumulates one evaluation's profile. All methods are safe for
// concurrent use (the executor's probe workers and core.Run's race workers
// record into one Recorder) and safe — without allocating — on a nil
// receiver, which is the disabled path.
type Recorder struct {
	stageNS [NumStages]atomic.Int64
	stageN  [NumStages]atomic.Int64
	ctr     [NumCounters]atomic.Int64
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe adds one timed interval to a stage.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil || s < 0 || s >= NumStages {
		return
	}
	r.stageNS[s].Add(int64(d))
	r.stageN[s].Add(1)
}

// Add accumulates n into a counter.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || c < 0 || c >= NumCounters {
		return
	}
	r.ctr[c].Add(n)
}

// nopStop is the shared no-op returned by Time on a nil recorder, so the
// disabled path never allocates a closure.
func nopStop() {}

// Time starts timing stage s and returns the function that stops the clock
// and records the interval. Typical use:
//
//	stop := rec.Time(obs.StageExec)
//	... work ...
//	stop()
func (r *Recorder) Time(s Stage) func() {
	if r == nil {
		return nopStop
	}
	start := time.Now()
	return func() { r.Observe(s, time.Since(start)) }
}

// StageTiming is one stage's accumulated wall-clock share.
type StageTiming struct {
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"duration_ns"`
	Count    int64         `json:"count"` // timed intervals folded in
}

// Profile is an immutable snapshot of a Recorder — the non-private,
// curator-side attribution of where an evaluation spent its time.
type Profile struct {
	Stages   []StageTiming    `json:"stages"`   // pipeline order; zero-count stages omitted
	Counters map[string]int64 `json:"counters"` // nonzero counters by stable name
}

// Snapshot captures the recorder's current state. A nil recorder snapshots to
// nil, so callers can unconditionally assign the result.
func (r *Recorder) Snapshot() *Profile {
	if r == nil {
		return nil
	}
	p := &Profile{Counters: make(map[string]int64)}
	for s := Stage(0); s < NumStages; s++ {
		n := r.stageN[s].Load()
		if n == 0 {
			continue
		}
		p.Stages = append(p.Stages, StageTiming{
			Stage:    s.String(),
			Duration: time.Duration(r.stageNS[s].Load()),
			Count:    n,
		})
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := r.ctr[c].Load(); v != 0 {
			p.Counters[c.String()] = v
		}
	}
	return p
}

// StageTotal sums the profile's stage durations. Because stages are disjoint
// sections of one evaluation, the total is at most the end-to-end duration,
// with the gap being unattributed glue (diagnostics, plumbing).
func (p *Profile) StageTotal() time.Duration {
	var total time.Duration
	for _, st := range p.Stages {
		total += st.Duration
	}
	return total
}

// String renders the profile as an EXPLAIN ANALYZE-style report: one line per
// stage with its share of the stage total, then the nonzero counters.
func (p *Profile) String() string {
	var b strings.Builder
	total := p.StageTotal()
	b.WriteString("stage breakdown (NON-PRIVATE):\n")
	for _, st := range p.Stages {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Duration) / float64(total)
		}
		fmt.Fprintf(&b, "  %-17s %12s  %5.1f%%  (x%d)\n",
			st.Stage, st.Duration.Round(time.Microsecond), pct, st.Count)
	}
	fmt.Fprintf(&b, "  %-17s %12s\n", "total", total.Round(time.Microsecond))
	if len(p.Counters) > 0 {
		names := make([]string, 0, len(p.Counters))
		for name := range p.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-21s %d\n", name, p.Counters[name])
		}
	}
	return b.String()
}
