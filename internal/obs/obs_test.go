package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderDisabledAllocFree is the named gate for the disabled path: a
// nil *Recorder must cost nothing — no allocations from Observe, Add, Time,
// or Snapshot. This is the contract that lets every pipeline layer thread a
// recorder pointer unconditionally.
func TestRecorderDisabledAllocFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe(StageExec, time.Second)
		r.Add(CtrSimplexIters, 42)
		// The partition fast path and the mechanism backends thread the same
		// pointer; their counters must be equally free when disabled.
		r.Add(CtrPartitionFastPath, 1)
		r.Add(CtrPartitionValues, 1)
		stop := r.Time(StageLPSolve)
		stop()
		stopNoise := r.Time(StageNoise)
		stopNoise()
		if r.Snapshot() != nil {
			t.Fatal("nil recorder must snapshot to nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled profiler path allocated %v times per run, want 0", allocs)
	}
}

func TestRecorderRecords(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageExec, 3*time.Millisecond)
	r.Observe(StageExec, 2*time.Millisecond)
	r.Observe(StageNoise, time.Millisecond)
	r.Add(CtrSimplexPivots, 7)
	r.Add(CtrSimplexPivots, 3)
	r.Add(CtrArenaBytes, 1024)

	p := r.Snapshot()
	if p == nil {
		t.Fatal("live recorder snapshot is nil")
	}
	want := map[string]struct {
		d time.Duration
		n int64
	}{
		"exec":  {5 * time.Millisecond, 2},
		"noise": {time.Millisecond, 1},
	}
	if len(p.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(p.Stages), len(want), p.Stages)
	}
	for _, st := range p.Stages {
		w, ok := want[st.Stage]
		if !ok {
			t.Fatalf("unexpected stage %q", st.Stage)
		}
		if st.Duration != w.d || st.Count != w.n {
			t.Fatalf("stage %q = (%v, %d), want (%v, %d)", st.Stage, st.Duration, st.Count, w.d, w.n)
		}
	}
	if got := p.Counters["simplex_pivots"]; got != 10 {
		t.Fatalf("simplex_pivots = %d, want 10", got)
	}
	if got := p.Counters["arena_bytes"]; got != 1024 {
		t.Fatalf("arena_bytes = %d, want 1024", got)
	}
	if _, ok := p.Counters["simplex_iters"]; ok {
		t.Fatal("zero counter must be omitted from snapshot")
	}
	if p.StageTotal() != 6*time.Millisecond {
		t.Fatalf("StageTotal = %v, want 6ms", p.StageTotal())
	}
}

// Stage order in a snapshot is pipeline order regardless of recording order.
func TestSnapshotStageOrder(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageNoise, time.Millisecond)
	r.Observe(StageParse, time.Millisecond)
	r.Observe(StageLPSolve, time.Millisecond)
	p := r.Snapshot()
	gotOrder := make([]string, len(p.Stages))
	for i, st := range p.Stages {
		gotOrder[i] = st.Stage
	}
	if len(gotOrder) != 3 || gotOrder[0] != "parse" || gotOrder[1] != "lp-solve" || gotOrder[2] != "noise" {
		t.Fatalf("stage order = %v, want [parse lp-solve noise]", gotOrder)
	}
}

func TestTimeRecordsElapsed(t *testing.T) {
	r := NewRecorder()
	stop := r.Time(StagePlan)
	time.Sleep(2 * time.Millisecond)
	stop()
	p := r.Snapshot()
	if len(p.Stages) != 1 || p.Stages[0].Stage != "plan" {
		t.Fatalf("snapshot = %+v, want one plan stage", p.Stages)
	}
	if p.Stages[0].Duration < time.Millisecond {
		t.Fatalf("plan duration %v, want >= 1ms", p.Stages[0].Duration)
	}
}

// Concurrent recording from many goroutines (the executor's probe workers and
// core's race workers share one recorder) must lose nothing; run under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(CtrExecRowsProbed, 1)
				r.Observe(StageExec, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	p := r.Snapshot()
	if got := p.Counters["exec_rows_probed"]; got != goroutines*per {
		t.Fatalf("exec_rows_probed = %d, want %d", got, goroutines*per)
	}
	if p.Stages[0].Count != goroutines*per {
		t.Fatalf("exec count = %d, want %d", p.Stages[0].Count, goroutines*per)
	}
}

func TestProfileString(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageExec, 30*time.Millisecond)
	r.Observe(StageLPSolve, 70*time.Millisecond)
	r.Add(CtrSimplexIters, 123)
	s := r.Snapshot().String()
	for _, want := range []string{"exec", "lp-solve", "70.0%", "total", "simplex_iters", "123", "NON-PRIVATE"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered profile missing %q:\n%s", want, s)
		}
	}
}

func TestStageCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "stage(") || seen[name] {
			t.Fatalf("bad or duplicate stage name %q for %d", name, s)
		}
		seen[name] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") || seen[name] {
			t.Fatalf("bad or duplicate counter name %q for %d", name, c)
		}
		seen[name] = true
	}
	if Stage(99).String() != "stage(99)" || Counter(-1).String() != "counter(-1)" {
		t.Fatal("out-of-range String() should degrade gracefully")
	}
}

// BenchmarkRecorderDisabled is the perf companion to the alloc gate,
// mirroring fault.BenchmarkCheckDisabled: the nil-recorder path should be a
// couple of predictable branches.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(CtrExecRowsProbed, 1)
		stop := r.Time(StageExec)
		stop()
	}
}

// BenchmarkRecorderEnabled bounds the enabled-path cost (two atomic adds per
// Observe, one per Add).
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(CtrExecRowsProbed, 1)
		r.Observe(StageExec, time.Nanosecond)
	}
}
