// Package repl is the primary/replica replication protocol behind r2td
// clustering (DESIGN.md §14). The primary owns the authoritative ε-ledger and
// streams length-prefixed, CRC-checked frames over plain TCP to replicas:
// every ledger line (charges, probe newlines, fencing-epoch records), every
// durable row batch, and every freshly released answer. Replicas apply the
// stream idempotently (every chunk carries its absolute position, so replays
// after a reconnect are skipped, never double-applied) and acknowledge ledger
// bytes; the primary's Hub can require a minimum number of acknowledgements
// before a charge is admitted, which is what makes failover ε-safe: an
// admitted charge is durable on at least SyncReplicas replicas before any
// analyst sees its answer.
//
// The package is transport and framing only — stdlib-only, with no knowledge
// of ledgers or tables. The server supplies a Source (primary side) that
// validates handshakes and produces catch-up frames, and an Applier (replica
// side) that applies each frame to local state. Fencing decisions (epoch
// comparison, ledger prefix identity) are made by those callbacks; the
// protocol just carries the epochs.
//
// Wire format, all integers big-endian:
//
//	frame:  u8 type | u64 epoch | u32 payload length | u32 CRC-32 (IEEE) | payload
//
// The CRC covers the type byte, the epoch, and the payload, so a frame whose
// header was torn cannot smuggle a valid-looking payload through. Decoding
// rejects an oversized length field before allocating anything (the
// FuzzReplFrame contract: arbitrary bytes never panic, never over-allocate,
// and never yield a CRC-failing frame that gets applied).
//
// Fault sites (internal/fault): repl.send fires on every frame write,
// repl.recv on every frame read, and repl.handshake at the start of both
// sides' handshakes — err rules at send/recv simulate a network partition.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"r2t/internal/fault"
)

// Frame types. Hello/Ack flow replica→primary; everything else
// primary→replica, except the router↔shard sub-query pair: a router opens a
// connection whose FIRST frame is TypeSubQuery (instead of TypeHello), and
// the hub answers each sub-query with one TypePartial on the same connection
// (the connection is reusable for further sub-queries).
const (
	TypeHello     byte = 1 // JSON Hello: node, epoch, ledger size+CRC, row counts
	TypeWelcome   byte = 2 // JSON Welcome: accept (catch-up target) or refuse
	TypeLedger    byte = 3 // ledger chunk: end offset | record seq | raw ledger bytes
	TypeAck       byte = 4 // replica ack: applied ledger offset | record seq
	TypeRows      byte = 5 // durable row batch: dataset | relation | start row | payload
	TypeAnswer    byte = 6 // freshly released answer for the free-replay cache (JSON)
	TypeHeartbeat byte = 7 // liveness + primary ledger position
	TypeSubQuery  byte = 8 // router→shard: uncharged sub-query (JSON, internal/shard)
	TypePartial   byte = 9 // shard→router: partial-aggregate reply (JSON, internal/shard)
)

// Fault-injection site names (package fault).
const (
	SiteSend      = "repl.send"
	SiteRecv      = "repl.recv"
	SiteHandshake = "repl.handshake"
)

// headerSize is the fixed frame prefix: type + epoch + length + CRC.
const headerSize = 1 + 8 + 4 + 4

// DefaultMaxPayload bounds one frame's payload. Row frames carry at most one
// segstore WAL record (64 MiB) plus identification, so 72 MiB leaves
// headroom; anything larger on the wire is corruption, rejected before any
// allocation happens.
const DefaultMaxPayload = 72 << 20

// Protocol errors. ErrFrameTooLarge and ErrCRC mean the stream cannot be
// trusted past this point; callers drop the connection and re-handshake.
var (
	ErrFrameTooLarge = errors.New("repl: frame payload exceeds maximum")
	ErrCRC           = errors.New("repl: frame CRC mismatch")
	ErrShortFrame    = errors.New("repl: short frame")
)

// Frame is one protocol message. Epoch is the sender's fencing epoch;
// receivers reject frames from older reigns (DESIGN.md §14).
type Frame struct {
	Type    byte
	Epoch   uint64
	Payload []byte
}

// frameCRC checksums the parts the CRC covers: type, epoch, payload.
func frameCRC(typ byte, epoch uint64, payload []byte) uint32 {
	var hdr [9]byte
	hdr[0] = typ
	binary.BigEndian.PutUint64(hdr[1:], epoch)
	crc := crc32.Update(0, crc32.IEEETable, hdr[:])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// AppendFrame appends f's encoding to buf and returns the extended slice.
func AppendFrame(buf []byte, f Frame) []byte {
	buf = append(buf, f.Type)
	buf = binary.BigEndian.AppendUint64(buf, f.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = binary.BigEndian.AppendUint32(buf, frameCRC(f.Type, f.Epoch, f.Payload))
	return append(buf, f.Payload...)
}

// EncodeFrame returns f's wire encoding.
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, headerSize+len(f.Payload)), f)
}

// DecodeFrame parses one frame from the head of b, returning the frame and
// the number of bytes consumed. It is total: no input can make it panic, and
// the length field is validated against maxPayload (0 selects the default)
// and the available bytes before any allocation, so a torn or hostile header
// cannot trigger a huge allocation. A CRC mismatch is an error — the frame is
// never returned for application.
func DecodeFrame(b []byte, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < headerSize {
		return Frame{}, 0, ErrShortFrame
	}
	typ := b[0]
	epoch := binary.BigEndian.Uint64(b[1:9])
	plen := int(binary.BigEndian.Uint32(b[9:13]))
	crc := binary.BigEndian.Uint32(b[13:17])
	if plen > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, plen, maxPayload)
	}
	if len(b) < headerSize+plen {
		return Frame{}, 0, ErrShortFrame
	}
	payload := b[headerSize : headerSize+plen]
	if frameCRC(typ, epoch, payload) != crc {
		return Frame{}, 0, ErrCRC
	}
	return Frame{Type: typ, Epoch: epoch, Payload: payload}, headerSize + plen, nil
}

// WriteFrame writes f to w. The repl.send fault site fires first, so chaos
// tests can sever the primary→replica (or ack) direction deterministically.
func WriteFrame(w io.Writer, f Frame) error {
	if err := fault.Check(SiteSend); err != nil {
		return err
	}
	_, err := w.Write(EncodeFrame(f))
	return err
}

// ReadFrame reads one frame from r with the same bounds discipline as
// DecodeFrame: the header is read first and its length field checked against
// maxPayload before the payload buffer is allocated. The repl.recv fault site
// fires before the read.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	if err := fault.Check(SiteRecv); err != nil {
		return Frame{}, err
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	plen := int(binary.BigEndian.Uint32(hdr[9:13]))
	if plen > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, plen, maxPayload)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, err
	}
	typ := hdr[0]
	epoch := binary.BigEndian.Uint64(hdr[1:9])
	if frameCRC(typ, epoch, payload) != binary.BigEndian.Uint32(hdr[13:17]) {
		return Frame{}, ErrCRC
	}
	return Frame{Type: typ, Epoch: epoch, Payload: payload}, nil
}
