package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"r2t/internal/fault"
)

// ErrNotEnoughReplicas aborts a synchronous Commit: fewer replicas than the
// configured minimum acknowledged the ledger record in time. The server maps
// it to 503 — the charge was written to the primary's ledger but NOT admitted
// (the budget hook fails), so replay can only ever overcount, never let an
// admitted charge exist on one node alone.
var ErrNotEnoughReplicas = errors.New("repl: not enough replicas acknowledged the charge")

// errSlowReplica detaches a session whose outbound queue overflowed.
var errSlowReplica = errors.New("repl: replica too slow, send queue overflowed")

// Source is the primary-side state the Hub replicates. Handshake validates a
// replica's Hello against local state (fencing epochs, ledger prefix
// identity, row-count plausibility) and returns the Welcome plus the ordered
// catch-up frames that bring the replica from its advertised position to the
// Welcome's target. Returning an error refuses the replica with the error
// text. Handshake runs concurrently with live publishes; overlap between the
// catch-up snapshot and concurrently published frames is safe because every
// chunk carries its absolute position and replicas apply idempotently.
type Source interface {
	Handshake(h Hello) (Welcome, []Frame, error)
}

// HubConfig assembles a Hub.
type HubConfig struct {
	Node       string
	Source     Source
	MaxPayload int           // frame payload bound (0 = DefaultMaxPayload)
	SendQueue  int           // per-session outbound buffer (0 = 4096 frames)
	WriteWait  time.Duration // per-frame write deadline (0 = 10s)
	Logf       func(format string, args ...any)

	// SubQuery, when non-nil, serves router sub-queries: a connection whose
	// first frame is TypeSubQuery enters a request/response loop where each
	// sub-query payload is answered with one TypePartial frame carrying the
	// callback's result. The callback returns the reply payload; a non-nil
	// error closes the connection (application-level failures travel inside
	// the reply payload instead, so the connection stays reusable).
	SubQuery func(payload []byte) ([]byte, error)
}

// Hub is the primary side of the protocol: it accepts replica connections,
// runs the handshake through the Source, streams published frames to every
// attached session, and lets the ledger's charge path block on
// acknowledgements (Commit). It owns no replication policy beyond transport —
// what to stream and whether to refuse a replica is the Source's call.
type Hub struct {
	cfg HubConfig

	mu       sync.Mutex
	sessions map[*session]struct{}
	subConns map[net.Conn]struct{} // router sub-query connections (lazily allocated)
	closed   bool

	disconnects atomic.Uint64
}

// PeerStatus is one attached replica's replication position, for /metrics.
type PeerStatus struct {
	Node        string
	AckedOffset int64  // highest ledger offset the replica acknowledged
	AckedSeq    uint64 // ledger records acknowledged
	SentSeq     uint64 // ledger records streamed to it
}

// session is one attached replica connection.
type session struct {
	hub  *Hub
	conn net.Conn
	node string

	ch   chan Frame
	done chan struct{}
	once sync.Once

	ackedOff atomic.Int64
	ackedSeq atomic.Uint64
	sentSeq  atomic.Uint64
	ackCh    chan struct{} // capacity 1; poked on every ack
}

// NewHub builds a hub; call Serve with a listener to accept replicas.
func NewHub(cfg HubConfig) *Hub {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = 4096
	}
	if cfg.WriteWait <= 0 {
		cfg.WriteWait = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Hub{cfg: cfg, sessions: make(map[*session]struct{})}
}

// Serve accepts replica connections on ln until the listener is closed.
func (h *Hub) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go h.handle(conn)
	}
}

// Close detaches every session. The caller closes its own listener first so
// Serve returns.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	sessions := make([]*session, 0, len(h.sessions))
	for s := range h.sessions {
		sessions = append(sessions, s)
	}
	subs := make([]net.Conn, 0, len(h.subConns))
	for c := range h.subConns {
		subs = append(subs, c)
	}
	h.mu.Unlock()
	for _, s := range sessions {
		s.detach(errors.New("repl: hub closed"), false)
	}
	// Sub-query connections must die with the hub: a closed shard that kept
	// answering over pooled router connections would be indistinguishable
	// from a live one, defeating kill-based failover tests and drains.
	for _, c := range subs {
		c.Close()
	}
}

// snapshot returns the attached sessions without holding the lock afterwards.
func (h *Hub) snapshot() []*session {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*session, 0, len(h.sessions))
	for s := range h.sessions {
		out = append(out, s)
	}
	return out
}

// Attached returns the number of attached replica sessions.
func (h *Hub) Attached() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// Disconnects counts sessions lost since startup (errors, timeouts, overflow
// — not hub shutdown or refused handshakes).
func (h *Hub) Disconnects() uint64 { return h.disconnects.Load() }

// Peers snapshots every attached session's replication position.
func (h *Hub) Peers() []PeerStatus {
	sessions := h.snapshot()
	out := make([]PeerStatus, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, PeerStatus{
			Node:        s.node,
			AckedOffset: s.ackedOff.Load(),
			AckedSeq:    s.ackedSeq.Load(),
			SentSeq:     s.sentSeq.Load(),
		})
	}
	return out
}

// Publish enqueues f to every attached session, fire-and-forget: probe
// newlines, row batches, answers, heartbeats. A session whose queue is full
// is detached (its next handshake catches it up from disk) rather than ever
// blocking the caller.
func (h *Hub) Publish(f Frame) {
	for _, s := range h.snapshot() {
		s.enqueue(f)
	}
}

// Commit publishes a ledger frame and blocks until every session attached at
// entry acknowledges ledger offset end, detaching any that cannot within
// timeout. It then requires at least minSync surviving acknowledgements —
// otherwise ErrNotEnoughReplicas, which the caller (the budget commit hook)
// turns into an aborted, unadmitted charge. minSync <= 0 makes the commit
// best-effort (solo/availability mode).
func (h *Hub) Commit(f Frame, end int64, minSync int, timeout time.Duration) error {
	sessions := h.snapshot()
	for _, s := range sessions {
		s.enqueue(f)
	}
	deadline := time.Now().Add(timeout)
	acked := 0
	for _, s := range sessions {
		if s.waitAck(end, deadline) {
			acked++
		} else {
			s.detach(fmt.Errorf("repl: no ack for ledger offset %d within %v", end, timeout), true)
		}
	}
	if acked < minSync {
		return fmt.Errorf("%w: %d of %d required (offset %d)", ErrNotEnoughReplicas, acked, minSync, end)
	}
	return nil
}

// handle runs one replica connection: handshake, catch-up, then the live
// stream until error or shutdown.
func (h *Hub) handle(conn net.Conn) {
	logf := h.cfg.Logf
	if err := faultHandshake(); err != nil {
		logf("repl: handshake fault: %v", err)
		conn.Close()
		return
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	f, err := ReadFrame(conn, h.cfg.MaxPayload)
	if err == nil && f.Type == TypeSubQuery && h.cfg.SubQuery != nil {
		h.serveSubQueries(conn, f)
		return
	}
	if err != nil || f.Type != TypeHello {
		logf("repl: bad hello from %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	var hello Hello
	if err := json.Unmarshal(f.Payload, &hello); err != nil {
		logf("repl: undecodable hello from %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}

	// Register before the Source snapshots its state for catch-up: frames
	// published from here on buffer in the session queue, so nothing falls in
	// the gap between the snapshot and the live stream. The overlap (a
	// published frame that is also inside the catch-up) is deduplicated on the
	// replica by absolute position.
	s := &session{
		hub:   h,
		conn:  conn,
		node:  hello.Node,
		ch:    make(chan Frame, h.cfg.SendQueue),
		done:  make(chan struct{}),
		ackCh: make(chan struct{}, 1),
	}
	s.ackedOff.Store(hello.LedgerSize)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.sessions[s] = struct{}{}
	h.mu.Unlock()

	welcome, catchup, herr := h.cfg.Source.Handshake(hello)
	if herr != nil && welcome.Refuse == "" {
		welcome.Refuse = herr.Error()
	}
	wbuf, _ := json.Marshal(welcome)
	conn.SetWriteDeadline(time.Now().Add(h.cfg.WriteWait))
	if err := WriteFrame(conn, Frame{Type: TypeWelcome, Epoch: welcome.Epoch, Payload: wbuf}); err != nil {
		s.detach(err, true)
		return
	}
	if welcome.Refuse != "" {
		logf("repl: refused replica %q: %s", hello.Node, welcome.Refuse)
		s.detach(nil, false)
		return
	}
	for _, cf := range catchup {
		conn.SetWriteDeadline(time.Now().Add(h.cfg.WriteWait))
		if err := s.write(cf); err != nil {
			s.detach(err, true)
			return
		}
	}
	conn.SetReadDeadline(time.Time{}) // acks arrive only when ledger traffic flows

	logf("repl: replica %q attached (ledger %d -> %d)", hello.Node, hello.LedgerSize, welcome.LedgerSize)
	go s.readAcks()
	s.writeLoop()
}

// enqueue hands f to the session's writer, detaching on overflow.
func (s *session) enqueue(f Frame) {
	select {
	case s.ch <- f:
	default:
		s.detach(errSlowReplica, true)
	}
}

// write sends one frame, tracking the streamed ledger record count.
func (s *session) write(f Frame) error {
	if f.Type == TypeLedger {
		if _, seq, _, err := DecodeLedgerChunk(f.Payload); err == nil && seq > s.sentSeq.Load() {
			s.sentSeq.Store(seq)
		}
	}
	return WriteFrame(s.conn, f)
}

// writeLoop drains the outbound queue until detach.
func (s *session) writeLoop() {
	for {
		select {
		case f := <-s.ch:
			s.conn.SetWriteDeadline(time.Now().Add(s.hub.cfg.WriteWait))
			if err := s.write(f); err != nil {
				s.detach(err, true)
				return
			}
		case <-s.done:
			return
		}
	}
}

// readAcks consumes the replica's acknowledgement stream.
func (s *session) readAcks() {
	for {
		f, err := ReadFrame(s.conn, 1024)
		if err != nil {
			s.detach(err, true)
			return
		}
		if f.Type != TypeAck {
			s.detach(fmt.Errorf("repl: unexpected %d frame from replica", f.Type), true)
			return
		}
		off, seq, err := DecodeAck(f.Payload)
		if err != nil {
			s.detach(err, true)
			return
		}
		if off > s.ackedOff.Load() {
			s.ackedOff.Store(off)
		}
		if seq > s.ackedSeq.Load() {
			s.ackedSeq.Store(seq)
		}
		select {
		case s.ackCh <- struct{}{}:
		default:
		}
	}
}

// waitAck blocks until the replica acknowledges ledger offset off, the
// session dies, or the deadline passes.
func (s *session) waitAck(off int64, deadline time.Time) bool {
	for {
		if s.ackedOff.Load() >= off {
			return true
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		t := time.NewTimer(wait)
		select {
		case <-s.ackCh:
			t.Stop()
		case <-s.done:
			t.Stop()
			return s.ackedOff.Load() >= off
		case <-t.C:
			return s.ackedOff.Load() >= off
		}
	}
}

// detach tears the session down exactly once: close the connection (which
// unblocks both loops), unregister, and optionally count the disconnect.
func (s *session) detach(cause error, count bool) {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
		s.hub.mu.Lock()
		delete(s.hub.sessions, s)
		s.hub.mu.Unlock()
		if count {
			s.hub.disconnects.Add(1)
			if cause != nil {
				s.hub.cfg.Logf("repl: replica %q detached: %v", s.node, cause)
			}
		}
	})
}

// serveSubQueries runs the router-facing request/response loop on one
// connection: the already-read first sub-query, then any number of further
// ones. Each is answered with a TypePartial frame echoing the request epoch.
// Evaluation time is bounded by the callback (the server wraps it in its own
// request timeout); between requests the connection idles without a read
// deadline, so routers can pool connections.
func (h *Hub) serveSubQueries(conn net.Conn, first Frame) {
	defer conn.Close()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.subConns == nil {
		h.subConns = make(map[net.Conn]struct{})
	}
	h.subConns[conn] = struct{}{}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.subConns, conn)
		h.mu.Unlock()
	}()
	f := first
	for {
		resp, err := h.cfg.SubQuery(f.Payload)
		if err != nil {
			h.cfg.Logf("repl: sub-query from %s failed: %v", conn.RemoteAddr(), err)
			return
		}
		conn.SetWriteDeadline(time.Now().Add(h.cfg.WriteWait))
		if err := WriteFrame(conn, Frame{Type: TypePartial, Epoch: f.Epoch, Payload: resp}); err != nil {
			return
		}
		conn.SetDeadline(time.Time{}) // idle until the router's next sub-query
		var rerr error
		f, rerr = ReadFrame(conn, h.cfg.MaxPayload)
		if rerr != nil || f.Type != TypeSubQuery {
			return
		}
	}
}

// faultHandshake fires the repl.handshake site (shared with the client side).
func faultHandshake() error {
	return fault.Check(SiteHandshake)
}
