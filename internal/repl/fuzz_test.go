package repl

import (
	"bytes"
	"testing"
)

// FuzzReplFrame is the frame-decoder half of the ISSUE-8 fuzz contract:
// arbitrary bytes must never panic, never force an allocation beyond the
// declared payload bound, and never yield a frame whose CRC does not match
// (DecodeFrame returning nil error IS the "gets applied" gate — a CRC-failing
// frame must never reach it). Accepted frames must re-encode to the exact
// bytes consumed, and the chunk-level decoders must be equally total on the
// accepted payloads.
func FuzzReplFrame(f *testing.F) {
	f.Add(EncodeFrame(Frame{Type: TypeHello, Epoch: 1, Payload: []byte(`{"node":"b"}`)}))
	f.Add(EncodeFrame(Frame{Type: TypeLedger, Epoch: 2, Payload: EncodeLedgerChunk(64, 3, []byte("{}\n"))}))
	f.Add(EncodeFrame(Frame{Type: TypeAck, Epoch: 2, Payload: EncodeAck(64, 3)}))
	f.Add(EncodeFrame(Frame{Type: TypeRows, Epoch: 1, Payload: EncodeRowsChunk(RowsChunk{Dataset: "d", Relation: "r", NCols: 2, Payload: []byte{9}})}))
	f.Add(EncodeFrame(Frame{Type: TypeHeartbeat, Epoch: 1, Payload: EncodeHeartbeat(10, 1)}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	const maxPayload = 1 << 20 // tight bound so over-allocation would be loud
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, maxPayload)
		if err != nil {
			return
		}
		if n < headerSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(fr.Payload) > maxPayload {
			t.Fatalf("accepted payload of %d bytes above bound %d", len(fr.Payload), maxPayload)
		}
		// An accepted frame is exactly the bytes consumed: CRC held, so
		// re-encoding must be the identity.
		if !bytes.Equal(EncodeFrame(fr), data[:n]) {
			t.Fatalf("accepted frame does not re-encode to its input")
		}
		// The stream reader must agree byte-for-byte with the slice decoder.
		sf, serr := ReadFrame(bytes.NewReader(data), maxPayload)
		if serr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", serr)
		}
		if sf.Type != fr.Type || sf.Epoch != fr.Epoch || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame")
		}
		// Chunk decoders must be total over whatever payloads frames carry.
		switch fr.Type {
		case TypeLedger:
			DecodeLedgerChunk(fr.Payload)
		case TypeAck:
			DecodeAck(fr.Payload)
		case TypeRows:
			if rc, err := DecodeRowsChunk(fr.Payload); err == nil {
				if rc.NCols < 0 || rc.StartRow < 0 {
					t.Fatalf("rows chunk accepted with negative fields: %+v", rc)
				}
			}
		case TypeHeartbeat:
			DecodeHeartbeat(fr.Payload)
		}
	})
}
