package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Hello is the replica's handshake payload (TypeHello, JSON): who it is, the
// highest fencing epoch it has seen, exactly how much ledger it already holds
// (size plus a CRC over those bytes, so the primary can verify the replica's
// ledger is a bitwise prefix of its own and refuse a diverged one), and its
// per-dataset per-relation durable row counts for row catch-up.
type Hello struct {
	Node       string                    `json:"node"`
	Epoch      uint64                    `json:"epoch"`
	LedgerSize int64                     `json:"ledger_size"`
	LedgerCRC  uint32                    `json:"ledger_crc"`
	Rows       map[string]map[string]int `json:"rows,omitempty"`
}

// Welcome is the primary's handshake reply (TypeWelcome, JSON). A non-empty
// Refuse rejects the replica (fenced primary, diverged ledger, diverged
// rows); otherwise LedgerSize/LedgerRecords fix the catch-up target — the
// replica reports ready only once it has applied at least that much ledger.
type Welcome struct {
	Node          string `json:"node"`
	Epoch         uint64 `json:"epoch"`
	LedgerSize    int64  `json:"ledger_size"`
	LedgerRecords uint64 `json:"ledger_records"`
	Refuse        string `json:"refuse,omitempty"`
}

// maxNameLen bounds dataset/relation names inside binary payloads.
const maxNameLen = 1 << 16

// EncodeLedgerChunk frames a run of raw ledger bytes ending at absolute file
// offset end, where seq is the primary's total ledger record (line) count at
// that offset. Offsets make application idempotent; seq feeds the
// r2td_repl_lag_records metric.
func EncodeLedgerChunk(end int64, seq uint64, data []byte) []byte {
	buf := make([]byte, 0, 16+len(data))
	buf = binary.BigEndian.AppendUint64(buf, uint64(end))
	buf = binary.BigEndian.AppendUint64(buf, seq)
	return append(buf, data...)
}

// DecodeLedgerChunk parses a TypeLedger payload.
func DecodeLedgerChunk(b []byte) (end int64, seq uint64, data []byte, err error) {
	if len(b) < 16 {
		return 0, 0, nil, errors.New("repl: ledger chunk truncated")
	}
	end = int64(binary.BigEndian.Uint64(b))
	seq = binary.BigEndian.Uint64(b[8:])
	if end < 0 || end-int64(len(b)-16) < 0 {
		return 0, 0, nil, fmt.Errorf("repl: ledger chunk with implausible end offset %d for %d bytes", end, len(b)-16)
	}
	return end, seq, b[16:], nil
}

// EncodeAck frames a replica acknowledgement: the ledger offset and record
// count durably applied so far.
func EncodeAck(offset int64, seq uint64) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.BigEndian.AppendUint64(buf, uint64(offset))
	return binary.BigEndian.AppendUint64(buf, seq)
}

// DecodeAck parses a TypeAck payload.
func DecodeAck(b []byte) (offset int64, seq uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("repl: ack payload is %d bytes, want 16", len(b))
	}
	offset = int64(binary.BigEndian.Uint64(b))
	if offset < 0 {
		return 0, 0, fmt.Errorf("repl: negative ack offset %d", offset)
	}
	return offset, binary.BigEndian.Uint64(b[8:]), nil
}

// RowsChunk is one replicated durable row batch: rows [StartRow,
// StartRow+n) of one relation, with the payload in the segstore WAL record
// encoding (opaque to this package). StartRow makes application idempotent —
// a replica already holding more rows skips the overlap.
type RowsChunk struct {
	Dataset  string
	Relation string
	StartRow int64
	NCols    int
	Payload  []byte
}

// EncodeRowsChunk frames rc as a TypeRows payload:
// u32 dataset len | dataset | u32 relation len | relation | u64 start row |
// u32 column count | payload.
func EncodeRowsChunk(rc RowsChunk) []byte {
	buf := make([]byte, 0, 4+len(rc.Dataset)+4+len(rc.Relation)+12+len(rc.Payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rc.Dataset)))
	buf = append(buf, rc.Dataset...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rc.Relation)))
	buf = append(buf, rc.Relation...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rc.StartRow))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rc.NCols))
	return append(buf, rc.Payload...)
}

// DecodeRowsChunk parses a TypeRows payload. Like DecodeFrame it is total and
// validates every length against the remaining bytes before slicing.
func DecodeRowsChunk(b []byte) (RowsChunk, error) {
	var rc RowsChunk
	readStr := func(what string) (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("repl: rows chunk %s truncated", what)
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > maxNameLen || n > len(b) {
			return "", fmt.Errorf("repl: rows chunk %s length %d implausible", what, n)
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	var err error
	if rc.Dataset, err = readStr("dataset"); err != nil {
		return rc, err
	}
	if rc.Relation, err = readStr("relation"); err != nil {
		return rc, err
	}
	if len(b) < 12 {
		return rc, errors.New("repl: rows chunk header truncated")
	}
	rc.StartRow = int64(binary.BigEndian.Uint64(b))
	rc.NCols = int(binary.BigEndian.Uint32(b[8:]))
	if rc.StartRow < 0 || rc.NCols < 0 || rc.NCols > maxNameLen {
		return rc, fmt.Errorf("repl: rows chunk with implausible start row %d / column count %d", rc.StartRow, rc.NCols)
	}
	rc.Payload = b[12:]
	return rc, nil
}

// EncodeHeartbeat frames the primary's current ledger position (TypeHeartbeat).
func EncodeHeartbeat(size int64, records uint64) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.BigEndian.AppendUint64(buf, uint64(size))
	return binary.BigEndian.AppendUint64(buf, records)
}

// DecodeHeartbeat parses a TypeHeartbeat payload.
func DecodeHeartbeat(b []byte) (size int64, records uint64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("repl: heartbeat payload is %d bytes, want 16", len(b))
	}
	size = int64(binary.BigEndian.Uint64(b))
	if size < 0 {
		return 0, 0, fmt.Errorf("repl: negative heartbeat size %d", size)
	}
	return size, binary.BigEndian.Uint64(b[8:]), nil
}
