package repl

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// subQueryHub starts a hub whose SubQuery callback echoes the payload with a
// prefix, returning its address.
func subQueryHub(t *testing.T, cb func([]byte) ([]byte, error)) (string, *Hub, func()) {
	t.Helper()
	h := NewHub(HubConfig{Node: "p", Source: &testSource{}, SubQuery: cb})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(ln)
	return ln.Addr().String(), h, func() { ln.Close(); h.Close() }
}

// TestHubServesSubQueries: a connection whose first frame is TypeSubQuery
// enters the request/response loop, answers every request with a TypePartial
// frame, and stays reusable across requests.
func TestHubServesSubQueries(t *testing.T) {
	addr, _, stop := subQueryHub(t, func(p []byte) ([]byte, error) {
		return append([]byte("got:"), p...), nil
	})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		req := []byte(fmt.Sprintf("q%d", i))
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		if err := WriteFrame(conn, Frame{Type: TypeSubQuery, Epoch: 7, Payload: req}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		f, err := ReadFrame(conn, DefaultMaxPayload)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if f.Type != TypePartial || f.Epoch != 7 {
			t.Fatalf("reply %d: type %d epoch %d", i, f.Type, f.Epoch)
		}
		if want := "got:" + string(req); string(f.Payload) != want {
			t.Fatalf("reply %d: %q, want %q", i, f.Payload, want)
		}
	}
}

// TestHubSubQueryCallbackErrorClosesConn: a callback error drops the
// connection instead of leaving the router hanging.
func TestHubSubQueryCallbackErrorClosesConn(t *testing.T) {
	addr, _, stop := subQueryHub(t, func(p []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := WriteFrame(conn, Frame{Type: TypeSubQuery, Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(conn, DefaultMaxPayload); err == nil {
		t.Fatal("expected closed connection after callback error")
	}
}

// TestHubWithoutSubQueryCallbackRejects: with no callback configured (a plain
// replication hub), a TypeSubQuery first frame is treated as a bad hello and
// the connection closes — the sub-query path is strictly opt-in.
func TestHubWithoutSubQueryCallbackRejects(t *testing.T) {
	h := NewHub(HubConfig{Node: "p", Source: &testSource{}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go h.Serve(ln)
	defer h.Close()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := WriteFrame(conn, Frame{Type: TypeSubQuery, Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(conn, DefaultMaxPayload); err == nil {
		t.Fatal("expected rejection without a SubQuery callback")
	}
}
