package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Epoch: 0, Payload: nil},
		{Type: TypeLedger, Epoch: 1, Payload: []byte("{}\n")},
		{Type: TypeHeartbeat, Epoch: 1<<64 - 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: TypeAck, Epoch: 7, Payload: EncodeAck(123456, 42)},
	}
	for _, f := range frames {
		enc := EncodeFrame(f)
		got, n, err := DecodeFrame(enc, 0)
		if err != nil {
			t.Fatalf("DecodeFrame(%d): %v", f.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(enc))
		}
		if got.Type != f.Type || got.Epoch != f.Epoch || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, f)
		}
		// Stream path must agree with the in-memory path.
		rf, err := ReadFrame(bytes.NewReader(enc), 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if rf.Type != f.Type || rf.Epoch != f.Epoch || !bytes.Equal(rf.Payload, f.Payload) {
			t.Fatalf("ReadFrame mismatch: %+v != %+v", rf, f)
		}
	}
}

func TestFrameCorruptionRejected(t *testing.T) {
	f := Frame{Type: TypeLedger, Epoch: 3, Payload: []byte(`{"ds":"x"}` + "\n")}
	enc := EncodeFrame(f)
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x40
		got, _, err := DecodeFrame(bad, 0)
		if err == nil {
			// A flip in the length field can only produce a *valid* frame if
			// it still CRC-matches, which a single bit flip cannot.
			t.Fatalf("bit flip at %d accepted: %+v", i, got)
		}
	}
}

func TestFrameTooLargeRejectedBeforeAllocation(t *testing.T) {
	// A header claiming a huge payload must be rejected from the header alone.
	enc := EncodeFrame(Frame{Type: TypeLedger, Epoch: 1, Payload: []byte("x")})
	enc[9], enc[10], enc[11], enc[12] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeFrame(enc, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame: %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(enc), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame: %v, want ErrFrameTooLarge", err)
	}
	// With a caller-supplied tighter bound, a merely-large payload is refused.
	big := EncodeFrame(Frame{Type: TypeRows, Epoch: 1, Payload: make([]byte, 2048)})
	if _, _, err := DecodeFrame(big, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame small max: %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameShortInput(t *testing.T) {
	enc := EncodeFrame(Frame{Type: TypeAnswer, Epoch: 2, Payload: []byte("abcdef")})
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeFrame(enc[:n], 0); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", n)
		}
		if _, err := ReadFrame(bytes.NewReader(enc[:n]), 0); err == nil {
			t.Fatalf("truncated stream of %d bytes accepted", n)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestLedgerChunkCodec(t *testing.T) {
	data := []byte(`{"ds":"a","eps":0.5}` + "\n")
	p := EncodeLedgerChunk(777, 13, data)
	end, seq, got, err := DecodeLedgerChunk(p)
	if err != nil {
		t.Fatal(err)
	}
	if end != 777 || seq != 13 || !bytes.Equal(got, data) {
		t.Fatalf("got end=%d seq=%d data=%q", end, seq, got)
	}
	if _, _, _, err := DecodeLedgerChunk(p[:10]); err == nil {
		t.Fatal("truncated ledger chunk accepted")
	}
	// end offset smaller than the chunk itself is impossible.
	if _, _, _, err := DecodeLedgerChunk(EncodeLedgerChunk(3, 1, data)); err == nil {
		t.Fatal("implausible end offset accepted")
	}
}

func TestAckCodec(t *testing.T) {
	off, seq, err := DecodeAck(EncodeAck(99, 3))
	if err != nil || off != 99 || seq != 3 {
		t.Fatalf("got %d,%d,%v", off, seq, err)
	}
	if _, _, err := DecodeAck([]byte("short")); err == nil {
		t.Fatal("short ack accepted")
	}
}

func TestRowsChunkCodec(t *testing.T) {
	rc := RowsChunk{Dataset: "orders", Relation: "lineitem", StartRow: 4096, NCols: 7, Payload: []byte{1, 2, 3}}
	got, err := DecodeRowsChunk(EncodeRowsChunk(rc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != rc.Dataset || got.Relation != rc.Relation || got.StartRow != rc.StartRow ||
		got.NCols != rc.NCols || !bytes.Equal(got.Payload, rc.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	enc := EncodeRowsChunk(rc)
	for n := 0; n < len(enc)-len(rc.Payload); n++ {
		if _, err := DecodeRowsChunk(enc[:n]); err == nil {
			t.Fatalf("truncated rows chunk of %d bytes accepted", n)
		}
	}
}

func TestHeartbeatCodec(t *testing.T) {
	size, records, err := DecodeHeartbeat(EncodeHeartbeat(1234, 56))
	if err != nil || size != 1234 || records != 56 {
		t.Fatalf("got %d,%d,%v", size, records, err)
	}
	if _, _, err := DecodeHeartbeat(make([]byte, 15)); err == nil {
		t.Fatal("short heartbeat accepted")
	}
}
