package repl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"

	"r2t/internal/fault"
)

// testSource is a minimal primary: an in-memory ledger byte log with
// prefix-CRC handshake verification and single-chunk catch-up.
type testSource struct {
	mu     sync.Mutex
	epoch  uint64
	ledger []byte
	seq    uint64
}

func (s *testSource) append(line string) (frame Frame, end int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger = append(s.ledger, line...)
	s.seq++
	end = int64(len(s.ledger))
	return Frame{Type: TypeLedger, Epoch: s.epoch, Payload: EncodeLedgerChunk(end, s.seq, []byte(line))}, end
}

func (s *testSource) Handshake(h Hello) (Welcome, []Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := Welcome{Node: "primary", Epoch: s.epoch, LedgerSize: int64(len(s.ledger)), LedgerRecords: s.seq}
	if h.Epoch > s.epoch {
		return w, nil, fmt.Errorf("fenced: replica epoch %d above ours %d", h.Epoch, s.epoch)
	}
	if h.LedgerSize > int64(len(s.ledger)) {
		return w, nil, errors.New("replica ledger longer than ours")
	}
	if crc32.ChecksumIEEE(s.ledger[:h.LedgerSize]) != h.LedgerCRC {
		return w, nil, errors.New("replica ledger diverged")
	}
	var catchup []Frame
	if h.LedgerSize < int64(len(s.ledger)) {
		catchup = append(catchup, Frame{
			Type:    TypeLedger,
			Epoch:   s.epoch,
			Payload: EncodeLedgerChunk(int64(len(s.ledger)), s.seq, s.ledger[h.LedgerSize:]),
		})
	}
	return w, catchup, nil
}

// testApplier is a minimal replica: an in-memory ledger with offset-deduped
// idempotent application.
type testApplier struct {
	mu         sync.Mutex
	node       string
	epoch      uint64
	ledger     []byte
	records    uint64
	rows       []RowsChunk
	answers    [][]byte
	heartbeats int
}

func (a *testApplier) Hello() (Hello, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Hello{
		Node:       a.node,
		Epoch:      a.epoch,
		LedgerSize: int64(len(a.ledger)),
		LedgerCRC:  crc32.ChecksumIEEE(a.ledger),
	}, nil
}

func (a *testApplier) ApplyLedger(end int64, seq uint64, data []byte) (int64, uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	have := int64(len(a.ledger))
	if end <= have {
		return have, a.records, nil // replayed overlap
	}
	start := end - int64(len(data))
	if start > have {
		return have, a.records, fmt.Errorf("gap: chunk starts at %d, have %d", start, have)
	}
	fresh := data[have-start:]
	a.ledger = append(a.ledger, fresh...)
	a.records += uint64(bytes.Count(fresh, []byte("\n")))
	return int64(len(a.ledger)), a.records, nil
}

func (a *testApplier) ApplyRows(rc RowsChunk) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows = append(a.rows, rc)
	return nil
}

func (a *testApplier) ApplyAnswer(epoch uint64, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.answers = append(a.answers, bytes.Clone(payload))
	return nil
}

func (a *testApplier) NoteHeartbeat(epoch uint64, size int64, records uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.heartbeats++
}

func (a *testApplier) snapshot() (ledger []byte, rows int, answers int, heartbeats int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return bytes.Clone(a.ledger), len(a.rows), len(a.answers), a.heartbeats
}

func startHub(t *testing.T, src Source) (*Hub, string) {
	t.Helper()
	hub := NewHub(HubConfig{Node: "primary", Source: src, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	t.Cleanup(func() { ln.Close(); hub.Close() })
	return hub, ln.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHubClientCatchUpAndCommit(t *testing.T) {
	src := &testSource{epoch: 1}
	src.append("{\"n\":1}\n")
	src.append("{\"n\":2}\n")
	hub, addr := startHub(t, src)

	app := &testApplier{node: "b"}
	cli := NewClient(ClientConfig{PrimaryAddr: addr, Node: "b", Applier: app, Logf: t.Logf})
	defer cli.Close()

	waitFor(t, "catch-up", func() bool { return cli.Status().CaughtUp })
	st := cli.Status()
	if !st.Connected || st.Epoch != 1 {
		t.Fatalf("status after catch-up: %+v", st)
	}
	ledger, _, _, _ := app.snapshot()
	if !bytes.Equal(ledger, src.ledger) {
		t.Fatalf("replica ledger %q != primary %q", ledger, src.ledger)
	}

	// A synchronous commit must block until the replica acknowledged it.
	f, end := src.append("{\"n\":3}\n")
	if err := hub.Commit(f, end, 1, 5*time.Second); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	ledger, _, _, _ = app.snapshot()
	if !bytes.Equal(ledger, src.ledger) {
		t.Fatalf("replica ledger %q != primary %q after commit", ledger, src.ledger)
	}
	if st := cli.Status(); st.AppliedRecords != 3 || st.LagRecords() != 0 {
		t.Fatalf("status after commit: %+v", st)
	}

	// Fire-and-forget publishes: rows, answers, heartbeats.
	hub.Publish(Frame{Type: TypeRows, Epoch: 1, Payload: EncodeRowsChunk(RowsChunk{Dataset: "d", Relation: "r", StartRow: 0, NCols: 1, Payload: []byte{1}})})
	hub.Publish(Frame{Type: TypeAnswer, Epoch: 1, Payload: []byte(`{"est":1}`)})
	hub.Publish(Frame{Type: TypeHeartbeat, Epoch: 1, Payload: EncodeHeartbeat(int64(len(src.ledger)), src.seq)})
	waitFor(t, "publishes", func() bool {
		_, rows, answers, hb := app.snapshot()
		return rows == 1 && answers == 1 && hb == 1
	})

	peers := hub.Peers()
	if len(peers) != 1 || peers[0].Node != "b" || peers[0].AckedSeq != 3 {
		t.Fatalf("peers: %+v", peers)
	}
}

func TestCommitWithoutReplicasFailsMinSync(t *testing.T) {
	src := &testSource{epoch: 1}
	hub, _ := startHub(t, src)
	f, end := src.append("{}\n")
	err := hub.Commit(f, end, 1, 100*time.Millisecond)
	if !errors.Is(err, ErrNotEnoughReplicas) {
		t.Fatalf("Commit with no replicas: %v, want ErrNotEnoughReplicas", err)
	}
	// minSync 0 is best-effort and must succeed with nobody attached.
	f, end = src.append("{}\n")
	if err := hub.Commit(f, end, 0, 100*time.Millisecond); err != nil {
		t.Fatalf("best-effort Commit: %v", err)
	}
}

func TestHandshakeRefusalIsSticky(t *testing.T) {
	src := &testSource{epoch: 1}
	src.append("{\"n\":1}\n")
	_, addr := startHub(t, src)

	// A replica claiming a NEWER epoch fences the primary's handshake.
	app := &testApplier{node: "b", epoch: 5}
	cli := NewClient(ClientConfig{PrimaryAddr: addr, Node: "b", Applier: app, RetryMax: 200 * time.Millisecond, Logf: t.Logf})
	defer cli.Close()
	waitFor(t, "refusal", func() bool { return cli.Status().LastRefuse != "" })
	if st := cli.Status(); st.Connected || st.CaughtUp {
		t.Fatalf("refused replica reports %+v", st)
	}
}

func TestHandshakeRefusesDivergedLedger(t *testing.T) {
	src := &testSource{epoch: 1}
	src.append("{\"n\":1}\n")
	_, addr := startHub(t, src)

	app := &testApplier{node: "b"}
	app.ledger = []byte("{\"DIVERGED\"}\n") // same length class, different bytes
	cli := NewClient(ClientConfig{PrimaryAddr: addr, Node: "b", Applier: app, RetryMax: 200 * time.Millisecond, Logf: t.Logf})
	defer cli.Close()
	waitFor(t, "divergence refusal", func() bool { return cli.Status().LastRefuse != "" })
}

func TestClientReconnectsAfterPartition(t *testing.T) {
	src := &testSource{epoch: 1}
	src.append("{\"n\":1}\n")
	hub, addr := startHub(t, src)

	app := &testApplier{node: "b"}
	cli := NewClient(ClientConfig{PrimaryAddr: addr, Node: "b", Applier: app, RetryMin: 20 * time.Millisecond, Logf: t.Logf})
	defer cli.Close()
	waitFor(t, "initial catch-up", func() bool { return cli.Status().CaughtUp })

	// Partition: every frame write fails once the rule arms; both directions
	// collapse, the session detaches, and the client reconnects after Reset.
	disable := fault.Enable(SiteSend, fault.Rule{Err: errors.New("partition")})
	f, end := src.append("{\"n\":2}\n")
	if err := hub.Commit(f, end, 1, 500*time.Millisecond); err == nil {
		t.Fatal("Commit succeeded across a partition")
	}
	disable()

	waitFor(t, "reconnect + re-catch-up", func() bool {
		st := cli.Status()
		return st.Connected && st.AppliedOffset == int64(len(src.ledger))
	})
	if hub.Disconnects() == 0 {
		t.Fatal("partition did not count a disconnect")
	}
	ledger, _, _, _ := app.snapshot()
	if !bytes.Equal(ledger, src.ledger) {
		t.Fatalf("replica ledger %q != primary %q after heal", ledger, src.ledger)
	}

	// The healed session must carry new commits again.
	f, end = src.append("{\"n\":3}\n")
	if err := hub.Commit(f, end, 1, 5*time.Second); err != nil {
		t.Fatalf("Commit after heal: %v", err)
	}
}

func TestClientRejectsStaleEpochFrames(t *testing.T) {
	// Hand-rolled "primary" that welcomes at epoch 3 then streams an epoch-1
	// frame: the client must drop the connection (fencing).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		defer conn.Close()
		if _, err := ReadFrame(conn, 0); err != nil {
			served <- err
			return
		}
		wbuf, _ := json.Marshal(Welcome{Node: "evil", Epoch: 3})
		if err := WriteFrame(conn, Frame{Type: TypeWelcome, Epoch: 3, Payload: wbuf}); err != nil {
			served <- err
			return
		}
		stale := Frame{Type: TypeLedger, Epoch: 1, Payload: EncodeLedgerChunk(3, 1, []byte("{}\n"))}
		if err := WriteFrame(conn, stale); err != nil {
			served <- err
			return
		}
		// The client must hang up on us rather than ack.
		_, err = ReadFrame(conn, 0)
		served <- err
	}()

	app := &testApplier{node: "b"}
	cli := NewClient(ClientConfig{PrimaryAddr: ln.Addr().String(), Node: "b", Applier: app, RetryMax: 5 * time.Second, Logf: t.Logf})
	defer cli.Close()
	select {
	case err := <-served:
		if err == nil {
			t.Fatal("client acknowledged a stale-epoch frame")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the client to hang up")
	}
	ledger, _, _, _ := app.snapshot()
	if len(ledger) != 0 {
		t.Fatalf("stale-epoch frame was applied: %q", ledger)
	}
}

func TestSlowReplicaIsDetachedNotBlocking(t *testing.T) {
	src := &testSource{epoch: 1}
	hub := NewHub(HubConfig{Node: "primary", Source: src, SendQueue: 2, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go hub.Serve(ln)
	defer hub.Close()

	// A raw conn that handshakes and then never reads: its queue (2) plus the
	// kernel buffers absorb a few frames, after which Publish must detach it
	// rather than block.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hbuf, _ := json.Marshal(Hello{Node: "slow"})
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: 0, Payload: hbuf}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(conn, 0); err != nil { // welcome
		t.Fatal(err)
	}
	waitFor(t, "attach", func() bool { return hub.Attached() == 1 })

	big := Frame{Type: TypeRows, Epoch: 1, Payload: make([]byte, 1<<20)}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4096; i++ {
			hub.Publish(big)
			if hub.Attached() == 0 {
				break
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on a slow replica")
	}
	waitFor(t, "detach", func() bool { return hub.Attached() == 0 })
}
