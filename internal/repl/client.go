package repl

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"r2t/internal/fault"
)

// Applier is the replica-side state the Client drives. Hello snapshots local
// durable state for the handshake; the Apply methods must be idempotent with
// respect to the positions each chunk carries (a reconnect replays the
// overlap). ApplyLedger returns the replica's durable ledger position after
// the chunk, which the client acknowledges to the primary — an error from
// ApplyLedger is fatal for the connection (nothing past an unappliable chunk
// may be acknowledged).
type Applier interface {
	Hello() (Hello, error)
	ApplyLedger(end int64, seq uint64, data []byte) (appliedOff int64, appliedRecords uint64, err error)
	ApplyRows(rc RowsChunk) error
	ApplyAnswer(epoch uint64, payload []byte) error
	NoteHeartbeat(epoch uint64, size int64, records uint64)
}

// ClientConfig assembles a Client.
type ClientConfig struct {
	PrimaryAddr string
	Node        string
	Applier     Applier
	MaxPayload  int           // frame payload bound (0 = DefaultMaxPayload)
	DialTimeout time.Duration // 0 = 3s
	RetryMin    time.Duration // reconnect backoff floor (0 = 100ms)
	RetryMax    time.Duration // reconnect backoff ceiling (0 = 2s)
	ReadIdle    time.Duration // stream read deadline; must exceed the primary's heartbeat interval (0 = 15s)
	Logf        func(format string, args ...any)

	// OnAttach, when non-nil, is called after every accepted handshake with
	// the address the client attached to. The server uses it to remember the
	// last known-good primary so a replica's 409 redirect always has a
	// target, even when the configured address has gone stale.
	OnAttach func(addr string)
}

// Status is a snapshot of the replica's replication position for /readyz and
// /metrics. CaughtUp latches once the replica has applied at least the ledger
// prefix the last successful handshake promised (Welcome.LedgerSize) — a
// caught-up replica that later loses its primary still holds that data, so it
// stays promotable and ready while Connected goes false.
type Status struct {
	Connected      bool
	CaughtUp       bool
	Epoch          uint64 // primary's fencing epoch from the last handshake
	TargetOffset   int64  // ledger bytes promised at handshake
	TargetRecords  uint64 // ledger records promised at handshake
	AppliedOffset  int64  // ledger bytes durably applied locally
	AppliedRecords uint64 // ledger records durably applied locally
	PrimaryRecords uint64 // primary's latest advertised record count (heartbeats/chunks)
	Disconnects    uint64
	LastError      string
	LastRefuse     string // non-empty once the primary refused the handshake
}

// LagRecords is how many ledger records the replica trails the primary by,
// per the primary's latest advertisement.
func (s Status) LagRecords() uint64 {
	if s.PrimaryRecords <= s.AppliedRecords {
		return 0
	}
	return s.PrimaryRecords - s.AppliedRecords
}

// Client is the replica side of the protocol: one goroutine that dials the
// primary, handshakes, applies the stream through the Applier, acknowledges
// ledger positions, and reconnects with backoff forever (a refused handshake
// retries at the slow ceiling — the refusal reason is operator-visible in
// Status, and a later promotion or operator fix can clear it).
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	st     Status
	conn   net.Conn // current connection, for Close to interrupt reads
	closed bool

	stop chan struct{}
	done chan struct{}
}

// NewClient starts the replication loop.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.ReadIdle <= 0 {
		cfg.ReadIdle = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Client{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go c.run()
	return c
}

// Status returns the current replication position.
func (c *Client) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Close stops the loop and waits for it to exit.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	close(c.stop)
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	<-c.done
}

// run is the reconnect loop.
func (c *Client) run() {
	defer close(c.done)
	backoff := c.cfg.RetryMin
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		attached, err := c.connectOnce()
		c.mu.Lock()
		c.st.Connected = false
		c.conn = nil
		if err != nil {
			c.st.LastError = err.Error()
		}
		if attached {
			c.st.Disconnects++
		}
		refused := c.st.LastRefuse != ""
		c.mu.Unlock()
		if err != nil {
			c.cfg.Logf("repl: replica stream ended: %v", err)
		}
		if attached {
			backoff = c.cfg.RetryMin
		}
		wait := backoff
		if refused {
			wait = c.cfg.RetryMax // refusal is sticky until the operator intervenes
		}
		select {
		case <-c.stop:
			return
		case <-time.After(wait):
		}
		if backoff *= 2; backoff > c.cfg.RetryMax {
			backoff = c.cfg.RetryMax
		}
	}
}

// connectOnce runs one dial/handshake/stream cycle. attached reports whether
// the handshake was accepted (a live session was lost, not a failed dial).
func (c *Client) connectOnce() (attached bool, err error) {
	if err := fault.Check(SiteHandshake); err != nil {
		return false, err
	}
	hello, err := c.cfg.Applier.Hello()
	if err != nil {
		return false, fmt.Errorf("repl: local state for hello: %w", err)
	}
	hello.Node = c.cfg.Node
	conn, err := net.DialTimeout("tcp", c.cfg.PrimaryAddr, c.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false, nil
	}
	c.conn = conn
	c.mu.Unlock()

	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout + 10*time.Second))
	hbuf, _ := json.Marshal(hello)
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: hello.Epoch, Payload: hbuf}); err != nil {
		return false, fmt.Errorf("repl: send hello: %w", err)
	}
	f, err := ReadFrame(conn, c.cfg.MaxPayload)
	if err != nil {
		return false, fmt.Errorf("repl: read welcome: %w", err)
	}
	if f.Type != TypeWelcome {
		return false, fmt.Errorf("repl: expected welcome, got frame type %d", f.Type)
	}
	var w Welcome
	if err := json.Unmarshal(f.Payload, &w); err != nil {
		return false, fmt.Errorf("repl: undecodable welcome: %w", err)
	}
	if w.Refuse != "" {
		c.mu.Lock()
		c.st.LastRefuse = w.Refuse
		c.mu.Unlock()
		return false, fmt.Errorf("repl: primary refused handshake: %s", w.Refuse)
	}
	if w.Epoch < hello.Epoch {
		return false, fmt.Errorf("repl: primary epoch %d behind ours %d", w.Epoch, hello.Epoch)
	}

	epoch := w.Epoch
	c.mu.Lock()
	c.st.Connected = true
	c.st.LastRefuse = ""
	c.st.Epoch = epoch
	c.st.TargetOffset = w.LedgerSize
	c.st.TargetRecords = w.LedgerRecords
	c.st.AppliedOffset = hello.LedgerSize
	if w.LedgerRecords > c.st.PrimaryRecords {
		c.st.PrimaryRecords = w.LedgerRecords
	}
	if c.st.AppliedOffset >= c.st.TargetOffset {
		c.st.CaughtUp = true
	}
	c.mu.Unlock()
	c.cfg.Logf("repl: attached to primary %q epoch %d (ledger %d -> %d)", w.Node, epoch, hello.LedgerSize, w.LedgerSize)
	if c.cfg.OnAttach != nil {
		c.cfg.OnAttach(c.cfg.PrimaryAddr)
	}

	for {
		select {
		case <-c.stop:
			return true, nil
		default:
		}
		conn.SetReadDeadline(time.Now().Add(c.cfg.ReadIdle))
		f, err := ReadFrame(conn, c.cfg.MaxPayload)
		if err != nil {
			return true, err
		}
		// Fencing: every streamed frame must carry the reign we attached
		// under (or a newer one, observed mid-stream). A frame from an older
		// reign means the socket outlived a promotion somewhere.
		if f.Epoch < epoch {
			return true, fmt.Errorf("repl: frame epoch %d below session epoch %d", f.Epoch, epoch)
		}
		if f.Epoch > epoch {
			epoch = f.Epoch
			c.mu.Lock()
			c.st.Epoch = epoch
			c.mu.Unlock()
		}
		switch f.Type {
		case TypeLedger:
			end, seq, data, derr := DecodeLedgerChunk(f.Payload)
			if derr != nil {
				return true, derr
			}
			off, recs, aerr := c.cfg.Applier.ApplyLedger(end, seq, data)
			if aerr != nil {
				return true, fmt.Errorf("repl: apply ledger chunk ending %d: %w", end, aerr)
			}
			c.noteApplied(off, recs, seq)
			conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if werr := WriteFrame(conn, Frame{Type: TypeAck, Epoch: epoch, Payload: EncodeAck(off, recs)}); werr != nil {
				return true, fmt.Errorf("repl: send ack: %w", werr)
			}
		case TypeRows:
			rc, derr := DecodeRowsChunk(f.Payload)
			if derr != nil {
				return true, derr
			}
			if aerr := c.cfg.Applier.ApplyRows(rc); aerr != nil {
				return true, fmt.Errorf("repl: apply rows %s/%s@%d: %w", rc.Dataset, rc.Relation, rc.StartRow, aerr)
			}
		case TypeAnswer:
			// Answers are a lazily-replicated cache: failure to apply one is
			// logged, never fatal — the replica just recomputes on demand.
			if aerr := c.cfg.Applier.ApplyAnswer(f.Epoch, f.Payload); aerr != nil {
				c.cfg.Logf("repl: dropping unappliable answer: %v", aerr)
			}
		case TypeHeartbeat:
			size, records, derr := DecodeHeartbeat(f.Payload)
			if derr != nil {
				return true, derr
			}
			c.cfg.Applier.NoteHeartbeat(f.Epoch, size, records)
			c.mu.Lock()
			if records > c.st.PrimaryRecords {
				c.st.PrimaryRecords = records
			}
			c.mu.Unlock()
		default:
			return true, fmt.Errorf("repl: unexpected frame type %d from primary", f.Type)
		}
	}
}

// noteApplied advances the replica's applied position and latches CaughtUp.
func (c *Client) noteApplied(off int64, recs, primarySeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if off > c.st.AppliedOffset {
		c.st.AppliedOffset = off
	}
	if recs > c.st.AppliedRecords {
		c.st.AppliedRecords = recs
	}
	if primarySeq > c.st.PrimaryRecords {
		c.st.PrimaryRecords = primarySeq
	}
	if !c.st.CaughtUp && c.st.AppliedOffset >= c.st.TargetOffset {
		c.st.CaughtUp = true
	}
}
