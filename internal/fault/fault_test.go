package fault

import (
	"errors"
	"syscall"
	"testing"
)

func TestDisabledIsInert(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("no rule armed, Active should be false")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("unarmed Check returned %v", err)
	}
	if _, ok := Fire("anything"); ok {
		t.Fatal("unarmed Fire fired")
	}
	if Hits("anything") != 0 {
		t.Fatal("unarmed site counted hits")
	}
}

func TestAlwaysRule(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	disable := Enable("s", Rule{Err: want})
	if !Active() {
		t.Fatal("Active should be true with a rule armed")
	}
	for i := 0; i < 3; i++ {
		if err := Check("s"); !errors.Is(err, want) {
			t.Fatalf("hit %d: got %v", i, err)
		}
	}
	if Hits("s") != 3 {
		t.Fatalf("hits = %d, want 3", Hits("s"))
	}
	disable()
	if Active() {
		t.Fatal("disable should disarm the only rule")
	}
	if err := Check("s"); err != nil {
		t.Fatalf("after disable: %v", err)
	}
}

func TestOnHitFiresExactlyOnce(t *testing.T) {
	defer Reset()
	Enable("s", Rule{OnHit: 3, Err: syscall.EIO})
	for i := 1; i <= 5; i++ {
		err := Check("s")
		if i == 3 && !errors.Is(err, syscall.EIO) {
			t.Fatalf("hit 3 should fire, got %v", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d should not fire, got %v", i, err)
		}
	}
}

func TestAfterFiresOnEveryLaterHit(t *testing.T) {
	defer Reset()
	Enable("s", Rule{After: 2})
	for i := 1; i <= 4; i++ {
		err := Check("s")
		if (i > 2) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
}

func TestNegativeOnHitIsPureCounter(t *testing.T) {
	defer Reset()
	Enable("s", Rule{OnHit: -1})
	for i := 0; i < 7; i++ {
		if err := Check("s"); err != nil {
			t.Fatalf("counter rule fired: %v", err)
		}
	}
	if Hits("s") != 7 {
		t.Fatalf("hits = %d, want 7", Hits("s"))
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Enable("s", Rule{Prob: 0.5, Seed: 42})
		defer Disable("s")
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check("s") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce the same fire sequence")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 over 64 hits fired %d times", fired)
	}
}

func TestPanicPayload(t *testing.T) {
	defer Reset()
	Enable("s", Rule{Panic: "injected"})
	defer func() {
		if p := recover(); p != "injected" {
			t.Fatalf("recovered %v", p)
		}
	}()
	Check("s")
	t.Fatal("Check should have panicked")
}

func TestFireExposesShortPayloadWithoutPanicking(t *testing.T) {
	defer Reset()
	Enable("s", Rule{Short: 5, Err: syscall.ENOSPC, Panic: "seam decides"})
	r, ok := Fire("s")
	if !ok || r.Short != 5 || !errors.Is(r.Err, syscall.ENOSPC) || r.Panic != "seam decides" {
		t.Fatalf("Fire = %+v, %v", r, ok)
	}
}

func TestEnableReplacesAndResetsHits(t *testing.T) {
	defer Reset()
	Enable("s", Rule{OnHit: -1})
	Check("s")
	Check("s")
	Enable("s", Rule{OnHit: 1, Err: syscall.EIO})
	if Hits("s") != 0 {
		t.Fatal("re-arming must reset the hit count")
	}
	if err := Check("s"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("fresh OnHit=1 should fire on the first hit, got %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	defer Reset()
	spec := "a=err,errno=EIO,on=2; b=panic,msg=kapow ;c=short,n=7,errno=ENOSPC;d=err,msg=custom,prob=0.25,seed=9"
	if err := ParseSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := Check("a"); err != nil {
		t.Fatalf("a hit 1 fired early: %v", err)
	}
	if err := Check("a"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("a hit 2: %v", err)
	}
	func() {
		defer func() {
			if p := recover(); p != "kapow" {
				t.Fatalf("b panic payload %v", p)
			}
		}()
		Check("b")
	}()
	r, ok := Fire("c")
	if !ok || r.Short != 7 || !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("c rule %+v, %v", r, ok)
	}
	if r, ok := Fire("d"); ok && r.Err == nil {
		t.Fatal("d fired with nil error")
	}
}

func TestParseSpecErrors(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"noequals",
		"s=weird",
		"s=err,errno=EWHAT",
		"s=err,on=x",
		"s=err,unknown=1",
		"s=err,bare",
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
		Reset()
	}
}

func TestParseSpecRejectsNonPanicOnPanicOnlySites(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"dp.laplace=err,errno=EIO",
		"dp.laplace=short,n=3",
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail: the dp.laplace seam honors only panics", bad)
		}
		Reset()
	}
	if err := ParseSpec("dp.laplace=panic,msg=noise"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if p := recover(); p != "noise" {
				t.Fatalf("recovered %v", p)
			}
		}()
		Check("dp.laplace")
		t.Fatal("panic rule should have fired")
	}()
}

func TestConcurrentCheckIsSafe(t *testing.T) {
	defer Reset()
	Enable("s", Rule{Prob: 0.5, Seed: 1})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				Check("s")
				Check("other-unarmed")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if Hits("s") != 8*200 {
		t.Fatalf("hits = %d, want %d", Hits("s"), 8*200)
	}
}

func BenchmarkCheckDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Check("hot.path"); err != nil {
			b.Fatal(err)
		}
	}
}
