// Package fault is a deterministic failpoint framework for crash-safety and
// chaos testing. Production code declares named injection sites — a call to
// Check (or Fire, for seams that need the rule's payload) at the place where
// an error could plausibly occur — and tests arm rules against those sites
// to deliver errors, panics, or short writes at precisely controlled
// moments: on the Nth hit, after the Nth hit, or with a seeded probability.
//
// The framework is stdlib-only and designed for zero overhead when idle:
// with no rule armed anywhere, Check and Fire reduce to a single atomic
// load and an immediate return, so sites may sit on hot paths (the LP
// solver, the noise source) without measurable cost. Hit counting and rule
// evaluation only happen while at least one rule is armed, which is a
// test-only condition.
//
// Sites are plain strings owned by the package that declares them. The
// sites currently instrumented:
//
//	ledger.open      r2td ledger file open            (internal/server)
//	ledger.read      r2td ledger replay reads         (internal/server)
//	ledger.write     r2td ledger appends — honors Short for torn writes
//	ledger.sync      r2td ledger fsync                (internal/server)
//	ledger.truncate  r2td ledger torn-tail repair     (internal/server)
//	segstore.open      table WAL file open              (internal/segstore)
//	segstore.read      table WAL replay reads           (internal/segstore)
//	segstore.write     table WAL appends — honors Short for torn writes
//	segstore.sync      table WAL fsync                  (internal/segstore)
//	segstore.truncate  table WAL torn-tail repair       (internal/segstore)
//	lp.solve         every exact LP solve             (internal/lp)
//	core.race        the start of each R2T race       (internal/core)
//	dp.laplace       every Laplace noise draw         (internal/dp) — panic payloads only
//	repl.send        every replication frame write    (internal/repl)
//	repl.recv        every replication frame read     (internal/repl)
//	repl.handshake   both ends of the replication handshake (internal/repl)
//
// An err rule armed at repl.send or repl.recv severs every replication
// stream at that direction — the deterministic stand-in for a network
// partition in the failover chaos suite.
//
// Rules are armed programmatically with Enable (tests), or for whole-binary
// chaos runs via the R2T_FAULTS environment variable, parsed once at
// process start:
//
//	R2T_FAULTS='ledger.sync=err,errno=EIO,on=3;lp.solve=panic,msg=boom,prob=0.01,seed=7'
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Rule describes when a site fires and what it delivers. The zero Rule
// fires on every hit with a generic injected error. The trigger filters
// (OnHit, After, Prob) combine conjunctively; a rule fires only when every
// configured filter agrees.
type Rule struct {
	// Err is the error Check returns (and seams deliver) when the rule
	// fires. A nil Err yields a generic "fault: injected error at <site>".
	Err error

	// Panic, when non-nil, makes Check (and seam helpers) panic with this
	// value instead of returning Err — the injection vector for testing
	// panic containment.
	Panic any

	// Short is a payload for write seams: the number of bytes the seam
	// should actually let through before failing, modeling a torn write.
	// It has no effect on Check itself.
	Short int

	// OnHit fires the rule on exactly the Nth hit of the site (1-based)
	// and never again. 0 disables the filter. A negative OnHit never
	// matches, which turns the armed rule into a pure hit counter for
	// Hits-based assertions.
	OnHit int

	// After fires the rule on every hit strictly after the Nth.
	// 0 disables the filter.
	After int

	// Prob, when positive, fires the rule with this probability per hit,
	// drawn from a PRNG seeded with Seed — deterministic for a fixed seed
	// and hit sequence.
	Prob float64
	// Seed seeds the Prob PRNG.
	Seed int64
}

// site is one armed injection point.
type site struct {
	rule Rule
	hits int
	rng  *rand.Rand
}

var (
	mu    sync.Mutex
	sites map[string]*site
	// armed counts enabled sites; the idle fast path is a single load of it.
	armed atomic.Int32
)

// Active reports whether any rule is armed anywhere. Sites use it (via the
// same atomic the fast path reads) and tests assert on it.
func Active() bool { return armed.Load() > 0 }

// Enable arms rule at the named site, replacing any rule already armed
// there, and returns a function that disarms it. Hit counts start at zero
// each time a rule is armed.
func Enable(name string, rule Rule) (disable func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	if _, exists := sites[name]; !exists {
		armed.Add(1)
	}
	s := &site{rule: rule}
	if rule.Prob > 0 {
		s.rng = rand.New(rand.NewSource(rule.Seed))
	}
	sites[name] = s
	return func() { Disable(name) }
}

// Disable disarms the named site. Disarming an unarmed site is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[name]; exists {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = nil
}

// Hits returns how many times the named site has been evaluated since its
// rule was armed (0 if unarmed). Arm a Rule{OnHit: -1} to count hits
// without ever firing.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.hits
	}
	return 0
}

// Fire evaluates the named site: it counts the hit and reports whether the
// armed rule (if any) fires, returning a copy of the rule so seams can read
// payloads like Short. Fire never panics — seams that honor Panic payloads
// must do so themselves (Check does).
//
// The disabled-path cost is one atomic load (Fire and Check are small
// enough for their fast paths to inline into the call site).
func Fire(name string) (Rule, bool) {
	if armed.Load() == 0 {
		return Rule{}, false
	}
	return fireSlow(name)
}

func fireSlow(name string) (Rule, bool) {
	mu.Lock()
	defer mu.Unlock()
	s := sites[name]
	if s == nil {
		return Rule{}, false
	}
	s.hits++
	r := s.rule
	if r.OnHit != 0 && s.hits != r.OnHit {
		return Rule{}, false
	}
	if r.After != 0 && s.hits <= r.After {
		return Rule{}, false
	}
	if r.Prob > 0 && s.rng.Float64() >= r.Prob {
		return Rule{}, false
	}
	if r.Err == nil {
		r.Err = fmt.Errorf("fault: injected error at %s", name)
	}
	return r, true
}

// Check is the standard injection site: it returns the armed rule's error
// when the rule fires (panicking instead when the rule carries a Panic
// payload) and nil otherwise. With nothing armed it costs one atomic load.
func Check(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return checkSlow(name)
}

func checkSlow(name string) error {
	r, ok := fireSlow(name)
	if !ok {
		return nil
	}
	if r.Panic != nil {
		panic(r.Panic)
	}
	return r.Err
}

// panicOnlySites are sites whose seam can deliver only Panic payloads —
// NoiseSource.Laplace returns a bare float64, so an err or short rule armed
// there would be silently ignored. ParseSpec rejects such rules outright
// rather than let a chaos spec believe it is injecting errors. (Enable stays
// permissive: tests legitimately arm payload-less rules like the OnHit:-1
// hit counter.)
var panicOnlySites = map[string]bool{
	"dp.laplace": true,
}

// EnvVar is the environment variable ParseEnv reads at process start.
const EnvVar = "R2T_FAULTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ParseSpec(spec); err != nil {
			// A malformed chaos spec is a configuration error; failing
			// loudly beats silently running without the requested faults.
			panic(fmt.Sprintf("fault: bad %s: %v", EnvVar, err))
		}
	}
}

// ParseSpec arms rules from a spec string — the R2T_FAULTS grammar:
//
//	spec  := entry (';' entry)*
//	entry := site '=' kind (',' key '=' value)*
//	kind  := 'err' | 'panic' | 'short'
//	key   := 'errno' | 'msg' | 'n' | 'on' | 'after' | 'prob' | 'seed'
//
// kind selects the payload: err delivers an error (errno=EIO|ENOSPC|EBADF
// or msg=<text>), panic panics with msg, short arms a torn write of n
// bytes. on/after/prob/seed set the trigger filters.
func ParseSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, body, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("entry %q: want site=kind[,key=value...]", entry)
		}
		fields := strings.Split(body, ",")
		var r Rule
		msg := ""
		for i, f := range fields {
			if i == 0 {
				switch f {
				case "err", "panic", "short":
				default:
					return fmt.Errorf("site %s: unknown kind %q (want err, panic, or short)", name, f)
				}
				if f != "panic" && panicOnlySites[name] {
					return fmt.Errorf("site %s honors only panic payloads; a %q rule would be silently ignored", name, f)
				}
				continue
			}
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("site %s: field %q: want key=value", name, f)
			}
			var err error
			switch k {
			case "errno":
				switch strings.ToUpper(v) {
				case "EIO":
					r.Err = syscall.EIO
				case "ENOSPC":
					r.Err = syscall.ENOSPC
				case "EBADF":
					r.Err = syscall.EBADF
				default:
					return fmt.Errorf("site %s: unknown errno %q", name, v)
				}
			case "msg":
				msg = v
			case "n":
				r.Short, err = strconv.Atoi(v)
			case "on":
				r.OnHit, err = strconv.Atoi(v)
			case "after":
				r.After, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "seed":
				r.Seed, err = strconv.ParseInt(v, 10, 64)
			default:
				return fmt.Errorf("site %s: unknown key %q", name, k)
			}
			if err != nil {
				return fmt.Errorf("site %s: bad %s=%q: %v", name, k, v, err)
			}
		}
		switch fields[0] {
		case "panic":
			if msg == "" {
				msg = "fault: injected panic at " + name
			}
			r.Panic = msg
		case "err", "short":
			if r.Err == nil && msg != "" {
				r.Err = fmt.Errorf("fault: %s", msg)
			}
		}
		Enable(name, r)
	}
	return nil
}
