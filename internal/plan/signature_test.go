package plan

import (
	"strings"
	"testing"
)

// Aggregate choice, primary designation and aliasing must not change the
// signature: those are exactly the dimensions the join-core cache shares
// across. Different join structure or different filter constants must.
func TestJoinSignatureSharesAcrossAggregates(t *testing.T) {
	s := graphSchema()
	priv := nodePriv()
	base := "FROM Edge e1, Edge e2 WHERE e1.dst = e2.src AND e1.src < 100"
	sigs := map[string]string{}
	for _, sel := range []string{
		"SELECT COUNT(*) ",
		"SELECT SUM(e1.src) ",
		"SELECT SUM(e1.src + e2.dst) ",
		"SELECT COUNT(DISTINCT e1.src) ",
	} {
		p := build(t, sel+base, s, priv)
		sigs[sel] = p.JoinSignature()
	}
	want := sigs["SELECT COUNT(*) "]
	for sel, got := range sigs {
		if got != want {
			t.Errorf("%s: signature %q differs from COUNT(*)'s %q", sel, got, want)
		}
	}

	// Aliases don't execute; renaming must not change the signature.
	p := build(t, "SELECT COUNT(*) FROM Edge x, Edge y WHERE x.dst = y.src AND x.src < 100", s, priv)
	if got := p.JoinSignature(); got != want {
		t.Errorf("alias rename changed signature: %q vs %q", got, want)
	}
}

func TestJoinSignatureDistinguishesStructure(t *testing.T) {
	s := graphSchema()
	priv := nodePriv()
	sigs := []string{
		build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src", s, priv).JoinSignature(),
		build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.src = e2.src", s, priv).JoinSignature(),
		build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src AND e1.src < 100", s, priv).JoinSignature(),
		build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src AND e1.src < 101", s, priv).JoinSignature(),
		build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src AND e1.src < 100.0", s, priv).JoinSignature(),
		build(t, "SELECT COUNT(*) FROM Edge", s, priv).JoinSignature(),
	}
	seen := map[string]int{}
	for i, sig := range sigs {
		if j, dup := seen[sig]; dup {
			t.Errorf("plans %d and %d share signature %q but differ structurally", j, i, sig)
		}
		seen[sig] = i
	}
}

func TestJoinSignatureCoversFilterForms(t *testing.T) {
	s := graphSchema()
	priv := nodePriv()
	// Every residual-expression node form renders without the !%T fallback.
	p := build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src "+
		"AND e1.src IN (1, 2, 3) AND e2.dst BETWEEN 0 AND 50 AND NOT (e1.src > e2.dst OR e1.src = 7)",
		s, priv)
	sig := p.JoinSignature()
	if strings.Contains(sig, "!") || strings.Contains(sig, "?") {
		t.Fatalf("signature hit a fallback arm: %q", sig)
	}
}
