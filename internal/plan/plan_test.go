package plan

import (
	"testing"

	"r2t/internal/schema"
	"r2t/internal/sql"
)

func graphSchema() *schema.Schema {
	return schema.MustNew(
		&schema.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&schema.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []schema.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
}

func nodePriv() schema.PrivateSpec { return schema.PrivateSpec{Primary: []string{"Node"}} }

func build(t *testing.T, src string, s *schema.Schema, priv schema.PrivateSpec) *Plan {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, s, priv)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompletionAddsNodeAtoms(t *testing.T) {
	// Length-2 paths (Example 3.1): completion must add Node atoms for the
	// three distinct endpoint variable classes.
	p := build(t, "SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src", graphSchema(), nodePriv())
	nodes := 0
	for _, a := range p.Atoms {
		if a.Rel.Name == "Node" {
			nodes++
			if !a.Completed {
				t.Error("node atom should be marked completed")
			}
		}
	}
	if nodes != 3 {
		t.Fatalf("completed plan has %d Node atoms, want 3", nodes)
	}
	// e1.dst and e2.src share one variable.
	if p.ColVar(sql.ColRef{Qualifier: "e1", Attr: "dst"}) != p.ColVar(sql.ColRef{Qualifier: "e2", Attr: "src"}) {
		t.Error("join equality did not unify variables")
	}
	if p.ColVar(sql.ColRef{Qualifier: "e1", Attr: "src"}) == p.ColVar(sql.ColRef{Qualifier: "e2", Attr: "dst"}) {
		t.Error("distinct endpoints were wrongly unified")
	}
	// Three primary-private PK variables, one per Node atom.
	privVars := map[int]bool{}
	for i, v := range p.PrivPK {
		if v >= 0 {
			if p.Atoms[i].Rel.Name != "Node" {
				t.Errorf("private atom %d is %s", i, p.Atoms[i].Rel.Name)
			}
			privVars[v] = true
		}
	}
	if len(privVars) != 3 {
		t.Fatalf("expected 3 private PK variables, got %d", len(privVars))
	}
}

func TestCompletionIdempotentWhenExplicit(t *testing.T) {
	// Example 6.2 writes the Node atoms explicitly: completion adds nothing.
	src := `SELECT count(*) FROM Node AS Node1, Node AS Node2, Edge
	        WHERE Edge.src = Node1.ID AND Edge.dst = Node2.ID AND Node1.ID < Node2.ID`
	p := build(t, src, graphSchema(), nodePriv())
	if len(p.Atoms) != 3 {
		t.Fatalf("got %d atoms, want 3 (no completion needed)", len(p.Atoms))
	}
	if len(p.Filters) != 1 {
		t.Fatalf("got %d residual filters, want 1 (the < predicate)", len(p.Filters))
	}
}

func TestCompletionTransitive(t *testing.T) {
	// Lineitem → Orders → Customer: completing a lineitem-only query must
	// pull in both Orders and Customer.
	s := schema.MustNew(
		&schema.Relation{Name: "Customer", Attrs: []string{"CK"}, PK: "CK"},
		&schema.Relation{Name: "Orders", Attrs: []string{"OK", "CK"}, PK: "OK",
			FKs: []schema.FK{{Attr: "CK", Ref: "Customer"}}},
		&schema.Relation{Name: "Lineitem", Attrs: []string{"OK", "price"},
			FKs: []schema.FK{{Attr: "OK", Ref: "Orders"}}},
	)
	p := build(t, "SELECT SUM(price) FROM Lineitem", s, schema.PrivateSpec{Primary: []string{"Customer"}})
	names := map[string]int{}
	for _, a := range p.Atoms {
		names[a.Rel.Name]++
	}
	if names["Orders"] != 1 || names["Customer"] != 1 {
		t.Fatalf("completion atoms: %v", names)
	}
	found := false
	for _, v := range p.PrivPK {
		if v >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no private atom after completion")
	}
}

func TestProjectionVars(t *testing.T) {
	s := schema.MustNew(
		&schema.Relation{Name: "Customer", Attrs: []string{"CK"}, PK: "CK"},
		&schema.Relation{Name: "Orders", Attrs: []string{"OK", "CK", "status"}, PK: "OK",
			FKs: []schema.FK{{Attr: "CK", Ref: "Customer"}}},
	)
	p := build(t, "SELECT COUNT(DISTINCT o.status) FROM Orders o", s, schema.PrivateSpec{Primary: []string{"Customer"}})
	if len(p.ProjVars) != 1 {
		t.Fatalf("ProjVars = %v", p.ProjVars)
	}
	if p.ProjVars[0] != p.ColVar(sql.ColRef{Qualifier: "o", Attr: "status"}) {
		t.Error("projection variable mismatch")
	}
}

func TestBuildErrors(t *testing.T) {
	s := graphSchema()
	cases := []struct {
		name string
		src  string
		priv schema.PrivateSpec
	}{
		{"unknown table", "SELECT COUNT(*) FROM Missing", nodePriv()},
		{"duplicate alias", "SELECT COUNT(*) FROM Edge e, Node e", nodePriv()},
		{"unknown column", "SELECT COUNT(*) FROM Edge WHERE nosuch = 1", nodePriv()},
		{"unknown qualified", "SELECT COUNT(*) FROM Edge WHERE Edge.nosuch = 1", nodePriv()},
		{"bad private spec", "SELECT COUNT(*) FROM Edge", schema.PrivateSpec{Primary: []string{"Zzz"}}},
	}
	for _, c := range cases {
		q, err := sql.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := Build(q, s, c.priv); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := schema.MustNew(
		&schema.Relation{Name: "A", Attrs: []string{"k", "x"}, PK: "k"},
		&schema.Relation{Name: "B", Attrs: []string{"k", "x"}, PK: "k",
			FKs: []schema.FK{{Attr: "k", Ref: "A"}}},
	)
	_ = s
	q := sql.MustParse("SELECT COUNT(*) FROM A, B WHERE x = 1")
	if _, err := Build(q, s, schema.PrivateSpec{Primary: []string{"A"}}); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
}

func TestQueryWithoutPrivateRelationFails(t *testing.T) {
	// A query touching only public relations has nothing to protect.
	s := schema.MustNew(
		&schema.Relation{Name: "Priv", Attrs: []string{"k"}, PK: "k"},
		&schema.Relation{Name: "Pub", Attrs: []string{"k"}, PK: "k"},
	)
	q := sql.MustParse("SELECT COUNT(*) FROM Pub")
	if _, err := Build(q, s, schema.PrivateSpec{Primary: []string{"Priv"}}); err == nil {
		t.Error("expected error for query with no private atoms")
	}
}
