// Package plan lowers a parsed SPJA query over a schema into the join-of-atoms
// form of Section 3.1: a list of relation atoms with unified variables, a set
// of residual predicates (the ψ filter), the aggregate expression, and — for
// COUNT(DISTINCT ...) — the projection variables. It also performs query
// completion (Section 3.2): for every FK variable whose referenced primary key
// is absent, the referenced relation is added with its PK bound to that
// variable, so provenance to the primary private relations is always explicit.
package plan

import (
	"fmt"
	"strings"

	"r2t/internal/schema"
	"r2t/internal/sql"
)

// Atom is one occurrence of a relation in the (completed) join, with one
// variable id per column.
type Atom struct {
	Rel       *schema.Relation
	Alias     string
	Vars      []int
	Completed bool // true if added by query completion, not by the user
}

// Filter is a residual predicate together with the variables it reads.
type Filter struct {
	Expr sql.Expr
	Vars []int
}

// Plan is the lowered query.
type Plan struct {
	Src      *sql.Query
	Schema   *schema.Schema
	Priv     schema.PrivateSpec
	Atoms    []Atom
	NumVars  int
	Filters  []Filter
	Agg      sql.AggKind
	SumExpr  sql.Expr // variables resolved via ColVar; set when Agg == AggSum
	SumVars  []int    // variables read by SumExpr
	ProjVars []int    // projection variables (Agg == AggCountDistinct)

	// PrivPK[i] (parallel to Atoms) is the variable holding atom i's primary
	// key when atom i is over a primary private relation, else -1. These
	// variables identify the individuals each join result references.
	PrivPK []int

	colVar map[sql.ColRef]int // resolved user-visible columns → variable id
}

// SelfJoin reports whether some relation appears in more than one atom of
// the completed join — the structural condition under which naive truncation
// is not DP-safe (Example 1.2). Shared by Explain and the mechanism chooser.
func (p *Plan) SelfJoin() bool {
	seen := make(map[string]bool, len(p.Atoms))
	for _, a := range p.Atoms {
		if seen[a.Rel.Name] {
			return true
		}
		seen[a.Rel.Name] = true
	}
	return false
}

// ColVar returns the variable id bound to a user column reference, or -1.
func (p *Plan) ColVar(c sql.ColRef) int {
	if v, ok := p.colVar[c]; ok {
		return v
	}
	return -1
}

// Build lowers q against s with privacy designation priv.
func Build(q *sql.Query, s *schema.Schema, priv schema.PrivateSpec) (*Plan, error) {
	if err := priv.Validate(s); err != nil {
		return nil, err
	}
	b := &builder{
		p:      &Plan{Src: q, Schema: s, Priv: priv, Agg: q.Agg, colVar: make(map[sql.ColRef]int)},
		byCol:  make(map[colKey]int),
		parent: nil,
	}

	// 1. User atoms with one fresh variable per column.
	seenAlias := make(map[string]bool)
	for _, tr := range q.From {
		rel := s.Relation(tr.Table)
		if rel == nil {
			return nil, fmt.Errorf("plan: unknown relation %q", tr.Table)
		}
		if seenAlias[tr.Alias] {
			return nil, fmt.Errorf("plan: duplicate alias %q", tr.Alias)
		}
		seenAlias[tr.Alias] = true
		vars := make([]int, len(rel.Attrs))
		for j := range rel.Attrs {
			v := b.fresh()
			vars[j] = v
			b.byCol[colKey{tr.Alias, rel.Attrs[j]}] = v
		}
		b.p.Atoms = append(b.p.Atoms, Atom{Rel: rel, Alias: tr.Alias, Vars: vars})
	}

	// 2. Unify variables across top-level equality conjuncts between columns;
	// everything else becomes a residual filter.
	var residual []sql.Expr
	for _, conj := range conjuncts(q.Where) {
		if bin, ok := conj.(sql.Binary); ok && bin.Op == "=" {
			lc, lok := bin.L.(sql.Col)
			rc, rok := bin.R.(sql.Col)
			if lok && rok {
				lv, err := b.resolve(lc.Ref)
				if err != nil {
					return nil, err
				}
				rv, err := b.resolve(rc.Ref)
				if err != nil {
					return nil, err
				}
				b.union(lv, rv)
				continue
			}
		}
		residual = append(residual, conj)
	}

	// 3. Canonicalize variable ids (union-find roots → dense ids).
	b.canonicalize()

	// 4. Resolve the aggregate and residual expressions.
	for _, e := range residual {
		vars, err := b.exprVars(e)
		if err != nil {
			return nil, err
		}
		b.p.Filters = append(b.p.Filters, Filter{Expr: e, Vars: vars})
	}
	switch q.Agg {
	case sql.AggSum:
		vars, err := b.exprVars(q.SumExpr)
		if err != nil {
			return nil, err
		}
		b.p.SumExpr = q.SumExpr
		b.p.SumVars = vars
	case sql.AggCountDistinct:
		for _, c := range q.Distinct {
			v, err := b.resolve(c)
			if err != nil {
				return nil, err
			}
			b.p.ProjVars = append(b.p.ProjVars, b.root(v))
		}
	}

	// 5. Query completion: add referenced relations for dangling FK variables.
	if err := b.complete(); err != nil {
		return nil, err
	}

	// 6. Record the PK variable of every primary-private atom.
	b.p.PrivPK = make([]int, len(b.p.Atoms))
	anyPriv := false
	for i, a := range b.p.Atoms {
		b.p.PrivPK[i] = -1
		if priv.IsPrimary(a.Rel.Name) {
			b.p.PrivPK[i] = a.Vars[a.Rel.AttrIndex(a.Rel.PK)]
			anyPriv = true
		}
	}
	if !anyPriv {
		return nil, fmt.Errorf("plan: completed query has no atom over a primary private relation; nothing to protect")
	}

	// 7. Expose resolved user columns, both qualified and — when unambiguous
	// across the user's FROM list — unqualified.
	for k, v := range b.byCol {
		b.p.colVar[sql.ColRef{Qualifier: k.alias, Attr: k.attr}] = b.root(v)
	}
	attrCount := make(map[string]int)
	attrVar := make(map[string]int)
	for _, a := range b.p.Atoms {
		if a.Completed {
			continue
		}
		for _, attr := range a.Rel.Attrs {
			attrCount[attr]++
			attrVar[attr] = b.byCol[colKey{a.Alias, attr}]
		}
	}
	for attr, cnt := range attrCount {
		if cnt == 1 {
			b.p.colVar[sql.ColRef{Attr: attr}] = b.root(attrVar[attr])
		}
	}
	return b.p, nil
}

type colKey struct{ alias, attr string }

type builder struct {
	p      *Plan
	byCol  map[colKey]int
	parent []int // union-find; nil entries mean self
	canon  []int // root id → dense id, after canonicalize
}

func (b *builder) fresh() int {
	b.parent = append(b.parent, len(b.parent))
	return len(b.parent) - 1
}

func (b *builder) find(v int) int {
	for b.parent[v] != v {
		b.parent[v] = b.parent[b.parent[v]]
		v = b.parent[v]
	}
	return v
}

func (b *builder) union(a, c int) {
	ra, rc := b.find(a), b.find(c)
	if ra != rc {
		b.parent[ra] = rc
	}
}

// canonicalize maps every union-find root to a dense id and rewrites atoms.
func (b *builder) canonicalize() {
	b.canon = make([]int, len(b.parent))
	for i := range b.canon {
		b.canon[i] = -1
	}
	next := 0
	for i := range b.p.Atoms {
		for j, v := range b.p.Atoms[i].Vars {
			r := b.find(v)
			if b.canon[r] < 0 {
				b.canon[r] = next
				next++
			}
			b.p.Atoms[i].Vars[j] = b.canon[r]
		}
	}
	b.p.NumVars = next
}

// root maps an original variable id to its dense id (post-canonicalize).
func (b *builder) root(v int) int { return b.canon[b.find(v)] }

// resolve finds the variable of a user column reference.
func (b *builder) resolve(c sql.ColRef) (int, error) {
	if c.Qualifier != "" {
		if v, ok := b.byCol[colKey{c.Qualifier, c.Attr}]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("plan: unknown column %s", c)
	}
	found := -1
	for _, a := range b.p.Atoms {
		if a.Completed {
			continue
		}
		if a.Rel.HasAttr(c.Attr) {
			if found >= 0 {
				return 0, fmt.Errorf("plan: ambiguous column %q", c.Attr)
			}
			found = b.byCol[colKey{a.Alias, c.Attr}]
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", c.Attr)
	}
	return found, nil
}

// exprVars resolves all column references in e to dense variable ids and
// returns the distinct variables read.
func (b *builder) exprVars(e sql.Expr) ([]int, error) {
	seen := make(map[int]bool)
	var walk func(e sql.Expr) error
	walk = func(e sql.Expr) error {
		switch t := e.(type) {
		case sql.Col:
			v, err := b.resolve(t.Ref)
			if err != nil {
				return err
			}
			seen[b.root(v)] = true
			return nil
		case sql.Lit:
			return nil
		case sql.Binary:
			if err := walk(t.L); err != nil {
				return err
			}
			return walk(t.R)
		case sql.Not:
			return walk(t.E)
		case sql.In:
			return walk(t.E)
		case sql.Between:
			if err := walk(t.E); err != nil {
				return err
			}
			if err := walk(t.Lo); err != nil {
				return err
			}
			return walk(t.Hi)
		case sql.Like:
			return walk(t.E)
		default:
			return fmt.Errorf("plan: unsupported expression node %T", e)
		}
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out, nil
}

// complete adds atoms for FK variables whose referenced PK is not in the
// query, iterating to a fixpoint (added atoms may carry FKs of their own).
func (b *builder) complete() error {
	// pkBound[ref][var] — relation ref has an atom whose PK is this variable.
	pkBound := make(map[string]map[int]bool)
	note := func(a Atom) {
		if a.Rel.PK == "" {
			return
		}
		v := a.Vars[a.Rel.AttrIndex(a.Rel.PK)]
		if pkBound[a.Rel.Name] == nil {
			pkBound[a.Rel.Name] = make(map[int]bool)
		}
		pkBound[a.Rel.Name][v] = true
	}
	for _, a := range b.p.Atoms {
		note(a)
	}
	added := 1
	for round := 0; added > 0; round++ {
		if round > len(b.p.Schema.Names())+2 {
			return fmt.Errorf("plan: query completion did not converge (FK graph should be a DAG)")
		}
		added = 0
		n := len(b.p.Atoms)
		for i := 0; i < n; i++ {
			a := b.p.Atoms[i]
			for _, fk := range a.Rel.FKs {
				v := a.Vars[a.Rel.AttrIndex(fk.Attr)]
				if pkBound[fk.Ref][v] {
					continue
				}
				ref := b.p.Schema.Relation(fk.Ref)
				vars := make([]int, len(ref.Attrs))
				for j, attr := range ref.Attrs {
					if attr == ref.PK {
						vars[j] = v
					} else {
						vars[j] = b.p.NumVars
						b.p.NumVars++
					}
				}
				na := Atom{
					Rel:       ref,
					Alias:     fmt.Sprintf("_ref%d_%s", len(b.p.Atoms), strings.ToLower(ref.Name)),
					Vars:      vars,
					Completed: true,
				}
				b.p.Atoms = append(b.p.Atoms, na)
				note(na)
				added++
			}
		}
	}
	return nil
}

// conjuncts splits a boolean expression on top-level ANDs.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if bin, ok := e.(sql.Binary); ok && bin.Op == "AND" {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	return []sql.Expr{e}
}
