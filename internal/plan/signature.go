package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"r2t/internal/sql"
	"r2t/internal/value"
)

// JoinSignature renders the plan's join structure — the completed atom list
// and the residual filters, with every column reference resolved to its dense
// variable id — as a canonical string. Two plans with equal signatures (over
// the same schema) drive the executor's probe pass identically: the join
// result depends only on atoms, filters and the table snapshots, never on the
// aggregate expression, the primary-relation designation, ε, GSQ or β (the
// aggregate is evaluated in a separate pass over the finished assignments).
// That makes the signature the sharing key for the cross-query join-core
// cache: distinct aggregations over the same FROM/WHERE collide on purpose.
//
// The rendering is collision-free for what it encodes: atoms carry the
// relation name (aliases are omitted — they cannot affect execution), filter
// columns appear as $<var>, and literals are kind-tagged (floats by their
// IEEE-754 bits) so 1 ≠ 1.0 ≠ '1'. It is deliberately conservative the other
// way: filters are rendered in plan order, so reordered-but-equal WHERE
// clauses hash apart. A false negative costs one redundant join; a false
// positive would silently share the wrong rows, so none are possible.
func (p *Plan) JoinSignature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1|vars=%d|", p.NumVars)
	for _, a := range p.Atoms {
		b.WriteString(a.Rel.Name)
		b.WriteByte('(')
		for j, v := range a.Vars {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
		b.WriteString(");")
	}
	b.WriteByte('|')
	for _, f := range p.Filters {
		p.sigExpr(&b, f.Expr)
		b.WriteByte(';')
	}
	return b.String()
}

// sigExpr renders one residual expression canonically for JoinSignature.
func (p *Plan) sigExpr(b *strings.Builder, e sql.Expr) {
	switch t := e.(type) {
	case sql.Col:
		if v := p.ColVar(t.Ref); v >= 0 {
			fmt.Fprintf(b, "$%d", v)
		} else {
			// A column the plan could not resolve never survives Build; the
			// fallback keeps the signature total rather than panicking.
			fmt.Fprintf(b, "?%s", t.Ref)
		}
	case sql.Lit:
		sigLit(b, t.Val)
	case sql.Binary:
		b.WriteByte('(')
		p.sigExpr(b, t.L)
		b.WriteByte(' ')
		b.WriteString(t.Op)
		b.WriteByte(' ')
		p.sigExpr(b, t.R)
		b.WriteByte(')')
	case sql.Not:
		b.WriteString("NOT(")
		p.sigExpr(b, t.E)
		b.WriteByte(')')
	case sql.In:
		p.sigExpr(b, t.E)
		b.WriteString(" IN[")
		for i, v := range t.List {
			if i > 0 {
				b.WriteByte(',')
			}
			sigLit(b, v)
		}
		b.WriteByte(']')
	case sql.Between:
		b.WriteString("BETWEEN(")
		p.sigExpr(b, t.E)
		b.WriteByte(',')
		p.sigExpr(b, t.Lo)
		b.WriteByte(',')
		p.sigExpr(b, t.Hi)
		b.WriteByte(')')
	case sql.Like:
		b.WriteString("LIKE(")
		p.sigExpr(b, t.E)
		b.WriteByte(',')
		b.WriteString(strconv.Quote(t.Pattern))
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "!%T", e)
	}
}

// sigLit renders a literal with an explicit kind tag so values of different
// kinds can never collide (floats use their exact bit pattern: 1.0 and the
// smallest double above it are distinct filters and must hash apart).
func sigLit(b *strings.Builder, v value.V) {
	switch v.K {
	case value.Null:
		b.WriteString("n:")
	case value.Int:
		fmt.Fprintf(b, "i:%d", v.I)
	case value.Float:
		fmt.Fprintf(b, "f:%016x", math.Float64bits(v.F))
	case value.String:
		b.WriteString("s:")
		b.WriteString(strconv.Quote(v.S))
	default:
		fmt.Fprintf(b, "k%d:?", int(v.K))
	}
}
