package r2t

import (
	"strings"
	"sync"
	"testing"
)

func TestBudgetAccounting(t *testing.T) {
	b := MustBudget(1.0)
	if b.Remaining() != 1 || b.Spent() != 0 {
		t.Fatal("fresh budget wrong")
	}
	if err := b.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.01); err == nil {
		t.Fatal("overspend should fail")
	}
	if b.Spent() != 1 {
		t.Fatalf("spent = %g", b.Spent())
	}
	if err := b.Spend(-1); err == nil {
		t.Fatal("negative spend should fail")
	}
	if _, err := NewBudget(0); err == nil {
		t.Fatal("zero budget should fail")
	}
}

func TestBudgetConcurrentSpend(t *testing.T) {
	b := MustBudget(10)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Spend(1) == nil {
				granted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	if n != 10 {
		t.Fatalf("granted %d spends of ε=1 from a budget of 10", n)
	}
}

func TestQueryWithBudget(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}, {1, 2}}, 3)
	b := MustBudget(2)
	opt := Options{Epsilon: 0.8, GSQ: 16, Primary: []string{"Node"}, Noise: NewNoiseSource(1)}

	if _, err := db.QueryWithBudget(edgeCount, opt, b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryWithBudget(edgeCount, opt, b); err != nil {
		t.Fatal(err)
	}
	// 1.6 spent; a third 0.8 query exceeds 2.
	if _, err := db.QueryWithBudget(edgeCount, opt, b); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	if b.Spent() != 1.6 {
		t.Fatalf("spent = %g, want 1.6 (failed query must not charge)", b.Spent())
	}

	// Static errors must not charge.
	if _, err := db.QueryWithBudget("garbage", opt, b); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if b.Spent() != 1.6 {
		t.Fatalf("static failure charged the budget: %g", b.Spent())
	}
	if _, err := db.QueryWithBudget(edgeCount, opt, nil); err == nil {
		t.Fatal("nil budget should fail")
	}
}
