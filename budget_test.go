package r2t

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBudgetAccounting(t *testing.T) {
	b := MustBudget(1.0)
	if b.Remaining() != 1 || b.Spent() != 0 {
		t.Fatal("fresh budget wrong")
	}
	if err := b.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.01); err == nil {
		t.Fatal("overspend should fail")
	}
	if b.Spent() != 1 {
		t.Fatalf("spent = %g", b.Spent())
	}
	if err := b.Spend(-1); err == nil {
		t.Fatal("negative spend should fail")
	}
	if _, err := NewBudget(0); err == nil {
		t.Fatal("zero budget should fail")
	}
}

func TestBudgetConcurrentSpend(t *testing.T) {
	b := MustBudget(10)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Spend(1) == nil {
				granted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	if n != 10 {
		t.Fatalf("granted %d spends of ε=1 from a budget of 10", n)
	}
}

// TestBudgetConcurrentInvariant races many spenders against concurrent
// Balance readers: the budget must never overspend, and every snapshot must
// satisfy spent+remaining == total exactly. Run under -race (scripts/check.sh
// does).
func TestBudgetConcurrentInvariant(t *testing.T) {
	const (
		total    = 16.0
		spenders = 64
		perSpend = 0.5
	)
	b := MustBudget(total)
	var spendWG, auditWG sync.WaitGroup
	var granted int64
	stop := make(chan struct{})

	// Concurrent auditors: every atomic snapshot must balance.
	for r := 0; r < 4; r++ {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spent, remaining := b.Balance()
				if got := spent + remaining; got != total {
					t.Errorf("balance snapshot broken: spent %g + remaining %g = %g, want %g", spent, remaining, got, total)
					return
				}
				if spent > total+1e-12 {
					t.Errorf("overspent: %g of %g", spent, total)
					return
				}
			}
		}()
	}
	for i := 0; i < spenders; i++ {
		spendWG.Add(1)
		go func() {
			defer spendWG.Done()
			if b.Spend(perSpend) == nil {
				atomic.AddInt64(&granted, 1)
			}
		}()
	}
	spendWG.Wait()
	close(stop)
	auditWG.Wait()

	if got := atomic.LoadInt64(&granted); got != int64(total/perSpend) {
		t.Fatalf("granted %d spends of ε=%g from a budget of %g", got, perSpend, total)
	}
	spent, remaining := b.Balance()
	if spent != total || remaining != 0 {
		t.Fatalf("final balance: spent %g remaining %g", spent, remaining)
	}
}

func TestBudgetSpendWith(t *testing.T) {
	b := MustBudget(1)
	committed := 0
	if err := b.SpendWith(0.5, func() error { committed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if committed != 1 || b.Spent() != 0.5 {
		t.Fatalf("commit ran %d times, spent %g", committed, b.Spent())
	}
	// A failing commit aborts the charge entirely.
	errBoom := errors.New("disk full")
	if err := b.SpendWith(0.5, func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("want wrapped commit error, got %v", err)
	}
	if b.Spent() != 0.5 {
		t.Fatalf("aborted commit still charged: spent %g", b.Spent())
	}
	// The commit hook must not run at all once the budget is exhausted.
	if err := b.SpendWith(0.6, func() error { committed++; return nil }); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if committed != 1 {
		t.Fatal("commit hook ran for a rejected charge")
	}
}

func TestBudgetReplay(t *testing.T) {
	b, err := NewBudgetWithSpent(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if spent, remaining := b.Balance(); spent != 1.5 || remaining != 0.5 {
		t.Fatalf("balance after replay: %g/%g", spent, remaining)
	}
	// Replay past the (lowered) total: exhausted, remaining clamped at 0.
	b, err = NewBudgetWithSpent(1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if spent, remaining := b.Balance(); spent != 1.5 || remaining != 0 {
		t.Fatalf("overspent replay balance: %g/%g", spent, remaining)
	}
	if err := b.Spend(0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspent replay should refuse charges, got %v", err)
	}
	if _, err := NewBudgetWithSpent(1, -0.1); err == nil {
		t.Fatal("negative replayed spend should fail")
	}
}

// TestInvalidOptionsNeverCharge is the regression test for the shared
// Options.Validate: no invalid-option path may reach the budget. Before
// validation was unified, QueryWithBudget re-implemented only part of
// Query's checks (it never pre-checked Beta), so e.g. an invalid β burned ε
// and then failed inside the mechanism.
func TestInvalidOptionsNeverCharge(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}, {1, 2}}, 3)
	valid := Options{Epsilon: 0.5, GSQ: 16, Primary: []string{"Node"}, Noise: NewNoiseSource(1)}

	invalid := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero epsilon", func(o *Options) { o.Epsilon = 0 }},
		{"negative epsilon", func(o *Options) { o.Epsilon = -1 }},
		{"small GSQ", func(o *Options) { o.GSQ = 1 }},
		{"negative beta", func(o *Options) { o.Beta = -0.1 }},
		{"beta one", func(o *Options) { o.Beta = 1 }},
		{"beta above one", func(o *Options) { o.Beta = 2 }},
		{"no primary", func(o *Options) { o.Primary = nil }},
		{"naive signed sum", func(o *Options) { o.Naive = true; o.AllowNegativeSum = true }},
	}
	for _, c := range invalid {
		t.Run(c.name, func(t *testing.T) {
			b := MustBudget(1)
			opt := valid
			c.mutate(&opt)
			if err := opt.Validate(); err == nil {
				t.Fatal("Validate accepted invalid options")
			}
			if _, err := db.QueryWithBudget(edgeCount, opt, b); err == nil {
				t.Fatal("QueryWithBudget accepted invalid options")
			}
			if spent := b.Spent(); spent != 0 {
				t.Fatalf("invalid options charged ε=%g", spent)
			}
			// Query must agree with Validate so the two can't drift.
			if _, err := db.Query(edgeCount, opt); err == nil {
				t.Fatal("Query accepted options Validate rejects")
			}
		})
	}

	// And the valid baseline still works end to end.
	b := MustBudget(1)
	if _, err := db.QueryWithBudget(edgeCount, valid, b); err != nil {
		t.Fatal(err)
	}
	if b.Spent() != 0.5 {
		t.Fatalf("spent %g, want 0.5", b.Spent())
	}
}

func TestQueryWithBudget(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}, {1, 2}}, 3)
	b := MustBudget(2)
	opt := Options{Epsilon: 0.8, GSQ: 16, Primary: []string{"Node"}, Noise: NewNoiseSource(1)}

	if _, err := db.QueryWithBudget(edgeCount, opt, b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryWithBudget(edgeCount, opt, b); err != nil {
		t.Fatal(err)
	}
	// 1.6 spent; a third 0.8 query exceeds 2.
	if _, err := db.QueryWithBudget(edgeCount, opt, b); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	if b.Spent() != 1.6 {
		t.Fatalf("spent = %g, want 1.6 (failed query must not charge)", b.Spent())
	}

	// Static errors must not charge.
	if _, err := db.QueryWithBudget("garbage", opt, b); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if b.Spent() != 1.6 {
		t.Fatalf("static failure charged the budget: %g", b.Spent())
	}
	if _, err := db.QueryWithBudget(edgeCount, opt, nil); err == nil {
		t.Fatal("nil budget should fail")
	}
}
