// tpch: private SPJA analytics over the TPC-H schema with multiple primary
// private relations — the workload of Example 9.1 and Section 10.3.
//
// A synthetic TPC-H instance is generated (micro-scaled; see internal/tpch),
// then three queries run under ε-DP:
//
//  1. the revenue SUM of Example 9.1, protecting Supplier AND Customer
//     simultaneously (Section 8's multiple-primary-private-relations policy);
//  2. a COUNT with a self-join (Q21-style, two Lineitem aliases);
//  3. a COUNT(DISTINCT ...) projection (Q10-style).
package main

import (
	"fmt"
	"log"

	"r2t"
	"r2t/internal/tpch"
)

func main() {
	// Generate a deterministic micro TPC-H instance (SF=2 ≈ 90k tuples) and
	// wrap it in the public DB facade. Note on accuracy: this instance is
	// ~100× smaller than the paper's SF=1 database, and R2T's error is an
	// absolute quantity (∝ DS_Q), so relative errors here are ~100× the
	// paper's sub-1% numbers. They shrink linearly as the data grows — run
	// cmd/experiments -exp fig7 to see exactly that trend.
	inst := tpch.Generate(tpch.GenOptions{SF: 2, Seed: 11})
	db := r2t.NewDBWithInstance(inst)
	if err := db.CheckIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H instance: %d tuples (%d customers, %d suppliers, %d lineitems)\n\n",
		inst.TotalRows(), inst.Table("Customer").Len(), inst.Table("Supplier").Len(), inst.Table("Lineitem").Len())

	queries := []struct {
		name    string
		sql     string
		primary []string
	}{
		{
			"revenue SUM (Example 9.1)",
			`SELECT SUM(l.price * (1 - l.discount))
			 FROM Supplier s, Lineitem l, Orders o, Customer c
			 WHERE s.SK = l.SK AND l.OK = o.OK AND o.CK = c.CK
			   AND o.odate >= 1200`,
			[]string{"Supplier", "Customer"},
		},
		{
			"multi-supplier orders (Q21-style self-join)",
			`SELECT COUNT(*) FROM Supplier s, Lineitem l1, Lineitem l2, Orders o
			 WHERE s.SK = l1.SK AND o.OK = l1.OK AND l2.OK = l1.OK AND l2.SK <> l1.SK
			   AND o.opriority = '1-URGENT'`,
			[]string{"Supplier", "Customer"},
		},
		{
			"distinct returning customers (Q10-style projection)",
			`SELECT COUNT(DISTINCT c.CK) FROM Customer c, Orders o, Lineitem l
			 WHERE c.CK = o.CK AND o.OK = l.OK AND l.returnflag = 'R'`,
			[]string{"Customer"},
		},
	}

	for i, q := range queries {
		ans, err := db.Query(q.sql, r2t.Options{
			Epsilon:   2,
			GSQ:       1e6, // conservative, as the paper recommends — R2T only pays log(GSQ)
			Primary:   q.primary,
			EarlyStop: true,
			Noise:     r2t.NewNoiseSource(int64(31 + i)),
		})
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		fmt.Printf("%s\n  protecting %v\n", q.name, q.primary)
		fmt.Printf("  true=%.6g  private=%.6g  error=%.3g%%  (τ*=%.4g, winner τ=%g, %s)\n\n",
			ans.TrueAnswer, ans.Estimate,
			100*abs(ans.Estimate-ans.TrueAnswer)/ans.TrueAnswer,
			ans.TauStar, ans.WinnerTau, ans.Duration.Round(1e6))
	}
	fmt.Println("The private answers are ε-DP under the FK-aware policy: a neighbor may")
	fmt.Println("drop a supplier or customer together with all orders and lineitems that")
	fmt.Println("reference it. True answers shown for accuracy judgment only.")
	fmt.Println()
	fmt.Println("Supplier-protected queries look noisy here because this micro instance")
	fmt.Println("has only 160 suppliers: each one owns ~1% of the answer, and no DP")
	fmt.Println("mechanism may depend that strongly on one individual. The paper's SF=1")
	fmt.Println("database has 10,000 suppliers, shrinking the same absolute error to the")
	fmt.Println("sub-2% numbers of Table 5.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
