// groupby: per-group private aggregation via budget splitting — the simple
// strategy the paper sketches as future work (Section 11).
//
// The query counts orders per market segment. The segment domain is public
// (it is part of the schema's documentation, not the data), so the release
// runs one R2T query per segment with ε/5 each: ε-DP overall by basic
// composition.
package main

import (
	"fmt"
	"log"

	"r2t"
	"r2t/internal/tpch"
)

func main() {
	inst := tpch.Generate(tpch.GenOptions{SF: 4, Seed: 5})
	db := r2t.NewDBWithInstance(inst)

	segments := []r2t.Value{
		r2t.Str("AUTOMOBILE"), r2t.Str("BUILDING"), r2t.Str("FURNITURE"),
		r2t.Str("HOUSEHOLD"), r2t.Str("MACHINERY"),
	}

	out, err := db.QueryGroupBy(
		`SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.CK`,
		"c.mktsegment",
		segments,
		r2t.Options{
			Epsilon:   5,    // split into ε=1 per group
			GSQ:       4096, // conservative bound on orders per customer (true max ~30)
			Primary:   []string{"Customer"},
			EarlyStop: true,
			Noise:     r2t.NewNoiseSource(17),
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("orders per market segment (ε = 5 total, split over 5 groups):")
	fmt.Printf("%-12s  %10s  %10s  %8s\n", "segment", "private", "true*", "error")
	for _, g := range out {
		a := g.Answer
		fmt.Printf("%-12s  %10.1f  %10.0f  %7.2f%%\n",
			g.Group.S, a.Estimate, a.TrueAnswer,
			100*abs(a.Estimate-a.TrueAnswer)/a.TrueAnswer)
	}
	fmt.Println("\n* true counts shown for accuracy judgment only; the private column is")
	fmt.Println("  safe to publish. Splitting the budget five ways costs accuracy — the")
	fmt.Println("  open problem Section 11 poses is answering all groups in one shot.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
