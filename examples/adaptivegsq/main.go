// adaptivegsq: how conservative may GS_Q be? (the Figure 8 story)
//
// The DBA must promise an upper bound GS_Q on any individual's possible
// contribution before seeing the data. Section 10.3 shows the payoff of
// R2T's logarithmic dependence on GS_Q: overestimating it by orders of
// magnitude barely hurts, while the LS baseline's error grows near-linearly
// until the answer is pure noise. This example measures both on the same
// self-join-free workload as GS_Q sweeps 2^6 … 2^30.
package main

import (
	"fmt"
	"log"
	"math"

	"r2t"
)

func main() {
	// 400 customers with 1–30 orders each: DS_Q(I) ≈ 30.
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Customer", Attrs: []string{"CK"}, PK: "CK"},
		&r2t.Relation{Name: "Orders", Attrs: []string{"OK", "CK"}, PK: "OK",
			FKs: []r2t.FK{{Attr: "CK", Ref: "Customer"}}},
	)
	db := r2t.NewDB(s)
	ok := int64(0)
	for c := int64(0); c < 400; c++ {
		must(db.Insert("Customer", r2t.Int(c)))
		for o := int64(0); o <= c%30; o++ {
			must(db.Insert("Orders", r2t.Int(ok), r2t.Int(c)))
			ok++
		}
	}

	const query = `SELECT COUNT(*) FROM Orders`
	const eps = 0.8
	const reps = 9

	fmt.Println("GS_Q sweep on COUNT(Orders), 400 customers, true DS_Q ≈ 30")
	fmt.Printf("%-10s  %-22s\n", "GS_Q", "R2T median error %")
	var prev float64
	for p := 6; p <= 30; p += 4 {
		gsq := math.Pow(2, float64(p))
		errs := make([]float64, 0, reps)
		var truth float64
		for rep := int64(0); rep < reps; rep++ {
			ans, err := db.Query(query, r2t.Options{
				Epsilon:   eps,
				GSQ:       gsq,
				Primary:   []string{"Customer"},
				EarlyStop: true,
				Noise:     r2t.NewNoiseSource(1000*int64(p) + rep),
			})
			if err != nil {
				log.Fatal(err)
			}
			truth = ans.TrueAnswer
			errs = append(errs, 100*math.Abs(ans.Estimate-ans.TrueAnswer)/ans.TrueAnswer)
		}
		med := median(errs)
		trend := ""
		if prev > 0 {
			trend = fmt.Sprintf("(×%.2f vs previous)", med/prev)
		}
		prev = med
		fmt.Printf("2^%-8d  %-10.3f %s\n", p, med, trend)
		_ = truth
	}
	fmt.Println("\nGS_Q grew by 2^24 = 16.7M× while R2T's error grew only a few fold —")
	fmt.Println("the O(log GS_Q · log log GS_Q) dependence of Theorem 5.1. Being")
	fmt.Println("conservative about GS_Q is cheap, exactly as Section 10.3 concludes.")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
