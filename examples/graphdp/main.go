// graphdp: node-DP graph pattern counting on a synthetic social network —
// the workload class of Section 10.2.
//
// A heavy-tailed graph is generated (a stand-in for the paper's Deezer
// dataset), loaded into the engine as Node/Edge relations, and all four
// benchmark pattern queries — edges, length-2 paths, triangles, rectangles —
// are answered under node-DP with the paper's GS_Q settings (D, D², D², D³).
package main

import (
	"fmt"
	"log"

	"r2t"
	"r2t/internal/graph"
)

// queries are SJA formulations with dedup predicates (Section 10.1). Node
// atoms are added automatically by query completion.
var queries = []struct {
	name string
	gsq  func(d float64) float64
	sql  string
}{
	{"edge count (Q1-)", func(d float64) float64 { return d },
		`SELECT COUNT(*) FROM Edge WHERE Edge.src < Edge.dst`},
	{"length-2 paths (Q2-)", func(d float64) float64 { return d * d },
		`SELECT COUNT(*) FROM Edge e1, Edge e2
		 WHERE e1.dst = e2.src AND e1.src < e2.dst AND e1.src <> e2.dst`},
	{"triangles (Qtri)", func(d float64) float64 { return d * d },
		`SELECT COUNT(*) FROM Edge e1, Edge e2, Edge e3
		 WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src
		   AND e1.src < e2.src AND e2.src < e3.src`},
	{"rectangles (Qrect)", func(d float64) float64 { return d * d * d },
		`SELECT COUNT(*) FROM Edge e1, Edge e2, Edge e3, Edge e4
		 WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e4.src AND e4.dst = e1.src
		   AND e1.src < e2.src AND e1.src < e3.src AND e1.src < e4.src AND e2.src < e4.src
		   AND e1.src <> e3.src AND e2.src <> e4.src`},
}

func main() {
	const degreeBound = 16 // the public degree promise D (road networks, Table 1)

	g := graph.GenRoad(60, 60, 7)
	fmt.Printf("road network: %d nodes, %d edges, max degree %d (bound D=%d)\n\n",
		g.N, g.NumEdges(), g.MaxDegree(), degreeBound)

	s := r2t.MustSchema(
		&r2t.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&r2t.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []r2t.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := r2t.NewDB(s)
	for u := 0; u < g.N; u++ {
		must(db.Insert("Node", r2t.Int(int64(u))))
		for _, v := range g.Adj[u] {
			must(db.Insert("Edge", r2t.Int(int64(u)), r2t.Int(int64(v))))
		}
	}

	for i, q := range queries {
		ans, err := db.Query(q.sql, r2t.Options{
			Epsilon:   0.8,
			GSQ:       q.gsq(degreeBound),
			Primary:   []string{"Node"},
			EarlyStop: true,
			Noise:     r2t.NewNoiseSource(int64(100 + i)),
		})
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		fmt.Printf("%-22s true=%-8.0f private=%-10.1f error=%6.2f%%  τ*=%-5.0f winner τ=%-5g (%s)\n",
			q.name, ans.TrueAnswer, ans.Estimate,
			100*abs(ans.Estimate-ans.TrueAnswer)/ans.TrueAnswer,
			ans.TauStar, ans.WinnerTau, ans.Duration.Round(1e6))
	}
	fmt.Println("\nNote: the private answers are ε-DP; the 'true' column is shown only to")
	fmt.Println("judge accuracy and must not be released in a real deployment.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
