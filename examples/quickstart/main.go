// Quickstart: the worked example of the paper (Example 6.2).
//
// We build the instance of Figure 2 — 1000 triangles, 1000 4-cliques, 100
// 8-stars, 10 16-stars and one 32-star (8103 nodes) — and ask for the number
// of edges under node-DP with GS_Q = 256, ε = 1, β = 0.1. The true answer is
// 9992; the paper's LP truncation values are Q(I,2)=7222, Q(I,4)=9444,
// Q(I,8)=9888, Q(I,16)=9976 and Q(I,τ)=9992 for τ ≥ 32. Run this to watch
// R2T race those estimates and release a private answer close to the truth.
package main

import (
	"fmt"
	"log"

	"r2t"
)

func main() {
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&r2t.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []r2t.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := r2t.NewDB(s)

	next := int64(0)
	newNode := func() int64 {
		id := next
		next++
		must(db.Insert("Node", r2t.Int(id)))
		return id
	}
	addEdge := func(u, v int64) {
		must(db.Insert("Edge", r2t.Int(u), r2t.Int(v)))
		must(db.Insert("Edge", r2t.Int(v), r2t.Int(u)))
	}
	clique := func(k int) {
		ids := make([]int64, k)
		for i := range ids {
			ids[i] = newNode()
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				addEdge(ids[i], ids[j])
			}
		}
	}
	star := func(k int) {
		center := newNode()
		for i := 0; i < k; i++ {
			addEdge(center, newNode())
		}
	}

	for i := 0; i < 1000; i++ {
		clique(3)
	}
	for i := 0; i < 1000; i++ {
		clique(4)
	}
	for i := 0; i < 100; i++ {
		star(8)
	}
	for i := 0; i < 10; i++ {
		star(16)
	}
	star(32)
	must(db.CheckIntegrity())
	fmt.Printf("instance: %d nodes, Example 6.2 of the paper\n", next)

	// The SQL form of the edge-counting query from Example 6.2.
	const query = `SELECT count(*) FROM Node AS Node1, Node AS Node2, Edge
	               WHERE Edge.src = Node1.ID AND Edge.dst = Node2.ID
	                 AND Node1.ID < Node2.ID`

	ans, err := db.Query(query, r2t.Options{
		Epsilon: 1,
		Beta:    0.1,
		GSQ:     256,
		Primary: []string{"Node"},
		Noise:   r2t.NewNoiseSource(2022), // fixed seed so the run reproduces
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nraces (compare Q(I,τ) with Example 6.2: 7222, 9444, 9888, 9976, 9992):")
	for i := len(ans.Races) - 1; i >= 0; i-- {
		r := ans.Races[i]
		fmt.Printf("  τ=%-4g Q(I,τ)=%-6g Q̃(I,τ)=%.1f\n", r.Tau, r.Value, r.Noisy)
	}
	fmt.Printf("\ntrue answer (non-private): %g\n", ans.TrueAnswer)
	fmt.Printf("released ε-DP answer:      %.1f  (winner τ=%g, error %.2f%%)\n",
		ans.Estimate, ans.WinnerTau, 100*abs(ans.Estimate-ans.TrueAnswer)/ans.TrueAnswer)
	fmt.Printf("Theorem 5.1 error bound:   %.0f\n",
		r2t.ErrorBound(r2t.Options{Epsilon: 1, Beta: 0.1, GSQ: 256}, ans.TauStar))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
