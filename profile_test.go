package r2t

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// trianglesDB builds 40 disjoint triangles — enough rows for every pipeline
// stage to do visible work.
func trianglesDB(t *testing.T) *DB {
	t.Helper()
	var edges [][2]int64
	for i := int64(0); i < 40; i++ {
		a, b, c := 3*i, 3*i+1, 3*i+2
		edges = append(edges, [2]int64{a, b}, [2]int64{b, c}, [2]int64{a, c})
	}
	return graphDB(t, edges, 120)
}

// TestProfileBitIdenticalEstimate: profiling is pure observation — with the
// same seeded noise, the released estimate (and every diagnostic the release
// depends on) is bit-identical with Profile on and off, for the plain, the
// early-stop, and the signed-split pipelines.
func TestProfileBitIdenticalEstimate(t *testing.T) {
	run := func(profile bool, early bool) *Answer {
		db := trianglesDB(t)
		ans, err := db.Query(edgeCount, Options{
			Epsilon: 1, GSQ: 256, Primary: []string{"Node"},
			Noise: NewNoiseSource(7), EarlyStop: early, Profile: profile,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	for _, early := range []bool{false, true} {
		off := run(false, early)
		on := run(true, early)
		if math.Float64bits(off.Estimate) != math.Float64bits(on.Estimate) {
			t.Errorf("early=%v: estimate %v (off) != %v (on)", early, off.Estimate, on.Estimate)
		}
		if off.TauStar != on.TauStar || off.WinnerTau != on.WinnerTau {
			t.Errorf("early=%v: diagnostics diverge with profiling on", early)
		}
		if off.Profile != nil {
			t.Error("Profile must be nil when Options.Profile is off")
		}
		if on.Profile == nil {
			t.Error("Profile must be set when Options.Profile is on")
		}
	}

	signed := func(profile bool) *Answer {
		db := ledgerDB(t)
		ans, err := db.Query("SELECT SUM(amount) FROM Txn", Options{
			Epsilon: 4, GSQ: 1024, Primary: []string{"Account"},
			AllowNegativeSum: true, Noise: NewNoiseSource(3), Profile: profile,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	off, on := signed(false), signed(true)
	if math.Float64bits(off.Estimate) != math.Float64bits(on.Estimate) {
		t.Errorf("signed split: estimate %v (off) != %v (on)", off.Estimate, on.Estimate)
	}
}

// TestProfileStagesSumWithinDuration: the stages are disjoint wall-clock
// intervals inside one evaluation, so their sum can never exceed the
// end-to-end Duration (beyond scheduler-granularity slack), and the pipeline
// stages that must run for this query all appear.
//
// The workload is a two-hop self-join on a path graph: node sensitivities
// vary (interior nodes sit in many two-hop results, end nodes in few), so the
// race grid has τ values both below and above the per-component thresholds —
// the simplex genuinely pivots AND whole components get redundancy-skipped,
// exercising every LP counter. (A triangle workload would not do: with every
// sensitivity exactly 2 and the grid starting at τ=2, all components skip and
// the simplex never runs.)
func TestProfileStagesSumWithinDuration(t *testing.T) {
	var edges [][2]int64
	for i := int64(0); i < 19; i++ {
		edges = append(edges, [2]int64{i, i + 1})
	}
	db := graphDB(t, edges, 20)
	const twoHop = `SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src`
	ans, err := db.Query(twoHop, Options{
		Epsilon: 1, GSQ: 256, Primary: []string{"Node"},
		Noise: NewNoiseSource(1), Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ans.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	seen := map[string]bool{}
	for _, st := range p.Stages {
		seen[st.Stage] = true
		if st.Duration < 0 {
			t.Errorf("stage %s has negative duration %v", st.Stage, st.Duration)
		}
	}
	for _, want := range []string{"parse", "plan", "exec", "truncation-build", "lp-solve", "noise"} {
		if !seen[want] {
			t.Errorf("profile missing stage %q: %+v", want, p.Stages)
		}
	}
	total := p.StageTotal()
	if slack := 2 * time.Millisecond; total > ans.Duration+slack {
		t.Errorf("stage total %v exceeds end-to-end duration %v", total, ans.Duration)
	}
	if p.Counters["simplex_iters"] == 0 || p.Counters["lp_components"] == 0 {
		t.Errorf("LP counters not harvested: %v", p.Counters)
	}
	if p.Counters["grid_redundant_skips"] == 0 {
		t.Errorf("redundancy skips not harvested: %v", p.Counters)
	}
	if p.Counters["exec_rows_probed"] == 0 {
		t.Errorf("exec counters not harvested: %v", p.Counters)
	}

	// The renderer carries the breakdown and the privacy marking.
	out := ExplainAnalyze(ans)
	for _, frag := range []string{"NON-PRIVATE", "lp-solve", "total"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", frag, out)
		}
	}
}

// TestSignedSplitHalves: the two halves of a signed split are attributable —
// every race carries its Half tag, both winners are reported, and τ* is the
// max over the halves.
func TestSignedSplitHalves(t *testing.T) {
	db := ledgerDB(t)
	ans, err := db.Query("SELECT SUM(amount) FROM Txn", Options{
		Epsilon: 4, GSQ: 1024, Primary: []string{"Account"},
		AllowNegativeSum: true, Noise: NewNoiseSource(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	for _, r := range ans.Races {
		switch r.Half {
		case "+":
			pos++
		case "-":
			neg++
		default:
			t.Fatalf("race τ=%g has no half tag (%q)", r.Tau, r.Half)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("races not tagged for both halves: %d positive, %d negative", pos, neg)
	}
	if ans.WinnerTau == 0 || ans.WinnerTauNeg == 0 {
		t.Errorf("winners: τ⁺=%g τ⁻=%g, want both reported", ans.WinnerTau, ans.WinnerTauNeg)
	}
	// Unsigned runs leave both the tag and the negative winner empty.
	db2 := trianglesDB(t)
	ans2, err := db2.Query(edgeCount, Options{
		Epsilon: 1, GSQ: 256, Primary: []string{"Node"}, Noise: NewNoiseSource(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans2.WinnerTauNeg != 0 {
		t.Errorf("unsigned run has WinnerTauNeg = %g", ans2.WinnerTauNeg)
	}
	for _, r := range ans2.Races {
		if r.Half != "" {
			t.Errorf("unsigned race tagged %q", r.Half)
		}
	}
}

// TestConcurrentAppendQuery exercises the build-index invalidation contract
// under -race: queries snapshot (rows, version) up front, Append bumps the
// version and clears the join cache, and JoinCacheAt refuses to serve or
// store an index across versions. A query racing Appends must see a
// consistent prefix — for a pure join, a result count between the pre- and
// post-append counts — and never a torn row or a poisoned cached index.
func TestConcurrentAppendQuery(t *testing.T) {
	s := MustSchema(
		&Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := NewDB(s)
	const nodes = 64
	for i := int64(0); i < nodes; i++ {
		if err := db.Insert("Node", Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Seed a path 0→1→…→15; two-hop query counts len(path)−1 pairs.
	seed := int64(16)
	for i := int64(0); i < seed; i++ {
		if err := db.Insert("Edge", Int(i), Int((i+1)%nodes)); err != nil {
			t.Fatal(err)
		}
	}
	const twoHop = `SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)

	// Writers extend the path concurrently (Append is the only write path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := seed; i < nodes-1; i++ {
			if err := db.Insert("Edge", Int(i), Int(i+1)); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers run the self-join (which probes — and caches — a table-side
	// index on Edge) while the writer appends.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prof, err := db.Sensitivities(twoHop, []string{"Node"})
				if err != nil {
					errs <- err
					return
				}
				// Monotone bounds: appends only ever add join results.
				if prof.JoinResults < int(seed-1) || prof.JoinResults > nodes-2 {
					errs <- fmt.Errorf("join result count %d outside monotone bounds [%d, %d]", prof.JoinResults, seed-1, nodes-2)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Let the race run briefly, then stop readers.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Settled state: the full path is visible and the final count is exact.
	prof, err := db.Sensitivities(twoHop, []string{"Node"})
	if err != nil {
		t.Fatal(err)
	}
	if prof.JoinResults != nodes-2 {
		t.Fatalf("settled two-hop count %d, want %d", prof.JoinResults, nodes-2)
	}
}
