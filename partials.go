package r2t

import (
	"context"
	"fmt"

	"r2t/internal/exec"
	"r2t/internal/mech"
	"r2t/internal/obs"
	"r2t/internal/plan"
	"r2t/internal/schema"
	"r2t/internal/sql"
	"r2t/internal/truncation"
)

// Partial is one shard's mergeable contribution to a partition-shaped
// truncator (see internal/truncation/partial.go). A router merges the
// per-shard partials with MergePartials and runs the release mechanism over
// the merged operator; in the integer-exact regime the released estimate is
// bit-identical to evaluating the unsharded union of rows.
type Partial = truncation.Partial

// MergePartials combines per-shard partials into the union truncator.
func MergePartials(parts []*Partial) (*truncation.MergedPartition, error) {
	return truncation.MergePartials(parts)
}

// QueryPartials is the result of one UNCHARGED sub-query evaluation on a
// shard: the mergeable partials for each release unit, in release order, and
// no noise. The caller (the router) owns the ε accounting — it charges once
// before scattering sub-queries and adds noise only to the merged operator.
// Like every non-released intermediate, partials are raw private data.
type QueryPartials struct {
	// Units holds one partial per release unit, in release order: a plain
	// query has one unit; a signed split has two (positive, then negative);
	// a group-by has one (or two, when signed) per group, in group order.
	Units []*Partial
	// Signed reports that units come in (positive, negative) pairs.
	Signed bool
}

// Partials evaluates a query's mergeable truncation partials WITHOUT
// charging ε or drawing noise. Options are validated exactly as for Query —
// the shard and the router must agree on the public parameters — but only
// the structural fields matter here: no mechanism runs. The resolved
// mechanism must be r2t and the query must be partition-shaped (no
// projection; each join result referencing at most one individual), the same
// structure the partition fast path serves.
func (db *DB) Partials(ctx context.Context, sqlText string, opt Options) (*QueryPartials, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	parsed, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(parsed, db.schema, schema.PrivateSpec{Primary: opt.Primary})
	if err != nil {
		return nil, err
	}
	choice, err := chooseFor(p, opt, false)
	if err != nil {
		return nil, err
	}
	if choice.Mech != mech.MechR2T {
		return nil, fmt.Errorf("r2t: mechanism %q does not produce mergeable partials (only r2t does)", choice.Mech)
	}
	if len(p.ProjVars) > 0 {
		return nil, fmt.Errorf("r2t: projection queries have no mergeable partials")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	c, err := db.coreFor(ctx, p, opt, rec)
	if err != nil {
		return nil, err
	}
	if opt.AllowNegativeSum && parsed.Agg == sql.AggSum {
		pos, neg, err := c.SplitResult(p, rec)
		if err != nil {
			return nil, err
		}
		units, err := partialUnits(pos, neg)
		if err != nil {
			return nil, err
		}
		return &QueryPartials{Units: units, Signed: true}, nil
	}
	res, err := c.Result(p, rec)
	if err != nil {
		return nil, err
	}
	units, err := partialUnits(res)
	if err != nil {
		return nil, err
	}
	return &QueryPartials{Units: units}, nil
}

// GroupPartials is Partials for a group-by release: one unit per group (two
// when the signed split applies), in group order — mirroring QueryGroupBy's
// release order so a router that merges unit-by-unit and draws noise in the
// same order reproduces the unsharded released sequence.
func (db *DB) GroupPartials(ctx context.Context, sqlText string, column string, groups []Value, opt Options) (*QueryPartials, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("r2t: group-by needs at least one group value")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	parsed, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	colRef, err := parseColumn(column)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(parsed, db.schema, schema.PrivateSpec{Primary: opt.Primary})
	if err != nil {
		return nil, err
	}
	groupVar := p.ColVar(colRef)
	if groupVar < 0 {
		return nil, fmt.Errorf("r2t: group-by column %q does not name a join column of the query (unknown or ambiguous)", column)
	}
	signed := opt.AllowNegativeSum && parsed.Agg == sql.AggSum
	if len(p.ProjVars) > 0 {
		return nil, fmt.Errorf("r2t: projection queries have no mergeable partials")
	}
	perGroup := opt
	perGroup.Epsilon = opt.Epsilon / float64(len(groups))
	choice, err := chooseFor(p, perGroup, true)
	if err != nil {
		return nil, err
	}
	if choice.Mech != mech.MechR2T {
		return nil, fmt.Errorf("r2t: mechanism %q does not produce mergeable partials (only r2t does)", choice.Mech)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	c, err := db.coreFor(ctx, p, opt, rec)
	if err != nil {
		return nil, err
	}
	parts, err := c.PartitionedResult(p, rec, groupVar, groups, signed)
	if err != nil {
		return nil, err
	}
	out := &QueryPartials{Signed: signed}
	for i := range groups {
		var units []*Partial
		if signed {
			pos, neg := exec.Split(parts[i])
			units, err = partialUnits(pos, neg)
		} else {
			units, err = partialUnits(parts[i])
		}
		if err != nil {
			return nil, fmt.Errorf("r2t: group %v: %w", groups[i], err)
		}
		out.Units = append(out.Units, units...)
	}
	return out, nil
}

// partialUnits converts evaluated results to partials, one per unit.
func partialUnits(results ...*exec.Result) ([]*Partial, error) {
	units := make([]*Partial, 0, len(results))
	for _, res := range results {
		p, err := truncation.NewPartial(truncation.FromResult(res))
		if err != nil {
			return nil, err
		}
		units = append(units, p)
	}
	return units, nil
}

// ShardCheck verifies that a query is safe to evaluate shard-locally on a
// dataset hash-partitioned on relation partition's primary key. partitionCols
// maps each partitioned relation to the column carrying its owner's key (the
// PK for the partition relation itself, the referencing FK attribute for its
// child relations); relations absent from the map are broadcast to every
// shard. The query is shard-safe when
//
//   - exactly one atom of the completed plan is over a primary private
//     relation, and that relation is the partition relation (so every join
//     result references at most one individual — the partition shape — and
//     that individual determines the owning shard), and
//   - every atom over a partitioned relation joins its partition column to
//     the partition relation's primary-key variable (so all rows a join
//     result touches are co-located on the owner's shard), and
//   - the query has no projection (partials do not merge across groups of
//     join results).
//
// Under these conditions the shard-local joins partition the unsharded join
// exactly: summing per-shard partials loses nothing and counts nothing twice.
func (db *DB) ShardCheck(sqlText string, primary []string, partition string, partitionCols map[string]string) error {
	parsed, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	p, err := plan.Build(parsed, db.schema, schema.PrivateSpec{Primary: primary})
	if err != nil {
		return err
	}
	if len(p.ProjVars) > 0 {
		return fmt.Errorf("r2t: projection queries are not shardable")
	}
	pkVar, privAtoms := -1, 0
	for i, a := range p.Atoms {
		if p.PrivPK[i] < 0 {
			continue
		}
		privAtoms++
		if a.Rel.Name != partition {
			return fmt.Errorf("r2t: primary private relation %q is not the partition relation %q", a.Rel.Name, partition)
		}
		pkVar = p.PrivPK[i]
	}
	if privAtoms != 1 {
		return fmt.Errorf("r2t: sharded evaluation requires exactly one atom over the partition relation %q, query has %d", partition, privAtoms)
	}
	for _, a := range p.Atoms {
		col, ok := partitionCols[a.Rel.Name]
		if !ok || a.Rel.Name == partition {
			continue
		}
		idx := a.Rel.AttrIndex(col)
		if idx < 0 {
			return fmt.Errorf("r2t: partition column %s.%s does not exist", a.Rel.Name, col)
		}
		if a.Vars[idx] != pkVar {
			return fmt.Errorf("r2t: atom %s does not join its partition column %s to the partition key of %s — join results would span shards", a.Rel.Name, col, partition)
		}
	}
	return nil
}
