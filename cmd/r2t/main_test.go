package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSchema(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.schema")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSchemaGraph(t *testing.T) {
	path := writeSchema(t, `
# Node-DP graph schema
Node(ID*)
Edge(src->Node, dst->Node)
`)
	s, err := loadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	node := s.Relation("Node")
	if node == nil || node.PK != "ID" {
		t.Fatalf("Node relation: %+v", node)
	}
	edge := s.Relation("Edge")
	if edge == nil || len(edge.FKs) != 2 {
		t.Fatalf("Edge relation: %+v", edge)
	}
	if edge.FKs[0].Ref != "Node" || edge.FKs[1].Attr != "dst" {
		t.Fatalf("Edge FKs: %+v", edge.FKs)
	}
}

func TestLoadSchemaTPCH(t *testing.T) {
	path := writeSchema(t, tpchLikeSchema)
	s, err := loadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Names()) != 4 {
		t.Fatalf("relations: %v", s.Names())
	}
	li := s.Relation("Lineitem")
	if li.PK != "" || len(li.FKs) != 1 || li.AttrIndex("price") != 1 {
		t.Fatalf("Lineitem: %+v", li)
	}
}

const tpchLikeSchema = `
Customer(CK*, name)
Orders(OK*, CK->Customer)
Lineitem(OK->Orders, price)
Nation(NK*)   # public
`

func TestLoadSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"missing paren", "Node ID*"},
		{"dangling FK", "Edge(src->Node)"},
		{"cycle", "A(k*, f->B)\nB(k*, f->A)"},
		{"empty ref", "Edge(src->)"},
	}
	for _, c := range cases {
		path := writeSchema(t, c.body)
		if _, err := loadSchema(path); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := loadSchema("/nonexistent/zzz.schema"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestHelpers(t *testing.T) {
	if abs(-2) != 2 || abs(3) != 3 {
		t.Error("abs broken")
	}
	if max(1, 2) != 2 || max(5, 2) != 5 {
		t.Error("max broken")
	}
}
