// Command r2t answers one SPJA SQL query under ε-differential privacy.
//
// The schema is described by a small text file (one relation per line):
//
//	Node(ID*)                      # '*' marks the primary key
//	Edge(src->Node, dst->Node)     # '->R' marks a foreign key into R
//
// Each relation is loaded from <datadir>/<relation>.csv (header row matching
// the attribute names). Example:
//
//	r2t -schema graph.schema -data ./data -primary Node \
//	    -gsq 1024 -eps 0.8 \
//	    -query "SELECT COUNT(*) FROM Edge WHERE src < dst"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"r2t"
	"r2t/internal/schemadesc"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema description file")
		dataDir    = flag.String("data", ".", "directory with <relation>.csv files")
		query      = flag.String("query", "", "SPJA SQL query")
		primary    = flag.String("primary", "", "comma-separated primary private relations")
		eps        = flag.Float64("eps", 0.8, "privacy budget ε")
		gsq        = flag.Float64("gsq", 1e6, "assumed global sensitivity bound")
		beta       = flag.Float64("beta", 0.1, "utility failure probability β")
		seed       = flag.Int64("seed", 0, "noise seed (0 = fresh crypto seed)")
		early      = flag.Bool("earlystop", true, "enable early-stop race pruning")
		profile    = flag.Bool("profile", false, "print the NON-PRIVATE per-stage profile (EXPLAIN ANALYZE style)")
		debug      = flag.Bool("debug", false, "print NON-PRIVATE diagnostics (true answer, τ*, races)")
		report     = flag.String("report", "", "instead of answering, export the NON-PRIVATE reporting-query occurrences to this file (Figure 3 pipeline)")
	)
	flag.Parse()
	if *schemaPath == "" || *query == "" || *primary == "" {
		flag.Usage()
		os.Exit(2)
	}

	s, err := loadSchema(*schemaPath)
	if err != nil {
		fatal(err)
	}
	db := r2t.NewDB(s)
	for _, name := range s.Names() {
		path := filepath.Join(*dataDir, name+".csv")
		if _, err := os.Stat(path); err != nil {
			continue // relations without a file stay empty
		}
		if err := db.LoadCSV(name, path); err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
	}
	if err := db.CheckIntegrity(); err != nil {
		fatal(err)
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		if err := db.ExportReport(*query, strings.Split(*primary, ","), f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote reporting-query occurrences to %s (raw private data — do not release)\n", *report)
		return
	}

	opt := r2t.Options{
		Epsilon:   *eps,
		GSQ:       *gsq,
		Beta:      *beta,
		Primary:   strings.Split(*primary, ","),
		EarlyStop: *early,
		Profile:   *profile,
	}
	if *seed != 0 {
		opt.Noise = r2t.NewNoiseSource(*seed)
	}
	// seed == 0: leave Noise nil so the engine seeds from the system CSPRNG
	// (dp.CryptoSeed) — wall-clock seeding is reconstructible by anyone who
	// can bound when the query ran.

	ans, err := db.Query(*query, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("private answer: %.6g\n", ans.Estimate)
	if *profile {
		fmt.Print(r2t.ExplainAnalyze(ans))
	}
	if *debug {
		fmt.Printf("NON-PRIVATE true answer: %.6g (error %.4g%%)\n",
			ans.TrueAnswer, 100*abs(ans.Estimate-ans.TrueAnswer)/max(1, abs(ans.TrueAnswer)))
		fmt.Printf("NON-PRIVATE τ* = %.6g, winner τ = %g, join results = %d, individuals = %d\n",
			ans.TauStar, ans.WinnerTau, ans.NumResults, ans.Individuals)
		for _, r := range ans.Races {
			status := "solved"
			if r.Pruned {
				status = "pruned"
			}
			fmt.Printf("  τ=%-10g %-7s Q(I,τ)=%-12.6g Q̃=%-12.6g (%s)\n", r.Tau, status, r.Value, r.Noisy, r.Duration.Round(time.Microsecond))
		}
	}
	fmt.Printf("time: %s\n", ans.Duration.Round(time.Millisecond))
}

// loadSchema parses the minimal schema description language (shared with
// cmd/r2td via internal/schemadesc).
func loadSchema(path string) (*r2t.Schema, error) {
	return schemadesc.ParseFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r2t:", err)
	os.Exit(1)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
