package main

import (
	"strings"
	"testing"
)

func TestParseDatasetFlag(t *testing.T) {
	cfg, err := parseDatasetFlag("name=graph,schema=g.schema,data=./d,eps=2.5,primary=Node+User")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "graph" || cfg.SchemaPath != "g.schema" || cfg.DataDir != "./d" || cfg.Epsilon != 2.5 {
		t.Fatalf("parsed: %+v", cfg)
	}
	if len(cfg.Primary) != 2 || cfg.Primary[0] != "Node" || cfg.Primary[1] != "User" {
		t.Fatalf("primary: %v", cfg.Primary)
	}

	// data defaults to "."
	cfg, err = parseDatasetFlag("name=g,schema=s,eps=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DataDir != "." {
		t.Fatalf("default data dir: %q", cfg.DataDir)
	}

	bad := []struct {
		in, wantErr string
	}{
		{"schema=s,eps=1", "needs at least name= and schema="},
		{"name=g,eps=1", "needs at least name= and schema="},
		{"name=g,schema=s", "positive eps="},
		{"name=g,schema=s,eps=-1", "positive eps="},
		{"name=g,schema=s,eps=zero", "bad eps"},
		{"name=g,schema=s,eps=1,color=red", "unknown key"},
		{"name=g,schema=s,eps=1,primarynode", "want key=value"},
	}
	for _, c := range bad {
		if _, err := parseDatasetFlag(c.in); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("parseDatasetFlag(%q) = %v, want error containing %q", c.in, err, c.wantErr)
		}
	}
}

func TestDatasetFlagsAccumulate(t *testing.T) {
	var d datasetFlags
	if err := d.Set("name=a,schema=s,eps=1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("name=b,schema=s,eps=2"); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "a,b" {
		t.Fatalf("String() = %q", got)
	}
	if err := d.Set("garbage"); err == nil {
		t.Fatal("malformed flag should fail")
	}
}
