// Command r2td runs the multi-tenant differentially private query service:
// named datasets (schema + CSV directory, the cmd/r2t format) served over
// HTTP/JSON with per-dataset ε budgets that survive restarts via an
// append-only ledger, a free-replay answer cache, bounded-worker admission
// control, and a /metrics endpoint.
//
// Each -dataset flag declares one dataset as comma-separated key=value
// pairs (primary relations are +-separated):
//
//	r2td -addr :8080 -ledger r2td.ledger \
//	     -dataset "name=graph,schema=graph.schema,data=./data,eps=2.0,primary=Node"
//
// Query it:
//
//	curl -s localhost:8080/v1/query -d '{
//	  "dataset": "graph",
//	  "sql": "SELECT COUNT(*) FROM Edge WHERE src < dst",
//	  "epsilon": 0.4, "gsq": 1024
//	}'
//
// With -data-dir (or a per-dataset dir= key) datasets become durable:
// tables are backed by fsynced, checksummed write-ahead logs replayed on
// startup, and POST /v1/append accepts integrity-checked row batches that
// survive crashes — see DESIGN.md §13:
//
//	r2td -data-dir /var/lib/r2td -ledger r2td.ledger -dataset "name=graph,..."
//	curl -s localhost:8080/v1/append -d '{
//	  "dataset": "graph", "relation": "Edge", "rows": [["7", "9"]]
//	}'
//
// Repeating the exact query is served from the answer cache and charges no
// additional ε (re-releasing a published DP answer is post-processing).
// SIGTERM/SIGINT drain in-flight queries before exit; the ledger guarantees
// a kill -9 never forgets spent budget either.
//
// /healthz reports liveness; /readyz reports readiness, which additionally
// probes that the budget ledger can still fsync — a daemon whose disk died
// (or whose ledger is fail-closed after a failed append, DESIGN.md §9)
// stays alive but not ready. The R2T_FAULTS environment variable arms the
// fault-injection framework (internal/fault) for chaos testing; an armed
// binary warns on startup and must never serve production traffic.
//
// Replication (DESIGN.md §14): a primary with -repl-listen streams its
// ε-ledger and durable row batches to replicas; a replica started with
// -role=replica -primary-addr pulls that stream, serves reads and free
// replays, and redirects charges to the primary with a 409 + X-R2T-Primary.
// Failover is operator-driven: POST /v1/promote on a caught-up replica claims
// the next fencing epoch and turns it into the primary; the old primary, if
// it ever comes back, is fenced by the epoch and refuses charges.
//
//	r2td -addr :8080 -repl-listen :7070 -sync-replicas 1 -node a ...   # primary
//	r2td -addr :8081 -role replica -primary-addr host-a:7070 \
//	     -repl-listen :7071 -node b ...                                # replica
//	curl -XPOST host-b:8081/v1/promote                                 # failover
//
// Sharding (DESIGN.md §16): a router started with -role=router fronts a group
// of shard primaries. The dataset declaration carries the shard map
// (shards=name@addr pairs, +-separated, addresses are the shards' -repl-listen)
// and the partition relation whose primary key rows are hashed on:
//
//	r2td -addr :8080 -role router -dataset \
//	     "name=shop,schema=shop.schema,eps=4,primary=Customer,partition=Customer,shards=s0@host0:7070+s1@host1:7070"
//
// The router owns the group's ε-ledger, charges once per admitted request
// before scattering, and merges the shards' truncation partials so the
// released answer is bit-equal to evaluating the same query unsharded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // pprof handlers on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"r2t/internal/fault"
	"r2t/internal/server"
	"r2t/internal/shard"
)

// datasetFlags collects repeated -dataset values.
type datasetFlags []server.DatasetConfig

func (d *datasetFlags) String() string {
	names := make([]string, len(*d))
	for i, cfg := range *d {
		names[i] = cfg.Name
	}
	return strings.Join(names, ",")
}

func (d *datasetFlags) Set(v string) error {
	cfg, err := parseDatasetFlag(v)
	if err != nil {
		return err
	}
	*d = append(*d, cfg)
	return nil
}

// parseDatasetFlag parses one
// "name=N,schema=PATH,data=DIR,eps=E,primary=R1+R2,mech=M" declaration.
func parseDatasetFlag(v string) (server.DatasetConfig, error) {
	cfg := server.DatasetConfig{DataDir: "."}
	for _, field := range strings.Split(v, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("dataset field %q: want key=value", field)
		}
		switch key {
		case "name":
			cfg.Name = val
		case "schema":
			cfg.SchemaPath = val
		case "data":
			cfg.DataDir = val
		case "eps":
			eps, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("dataset %q: bad eps %q", cfg.Name, val)
			}
			cfg.Epsilon = eps
		case "primary":
			for _, p := range strings.Split(val, "+") {
				if p = strings.TrimSpace(p); p != "" {
					cfg.Primary = append(cfg.Primary, p)
				}
			}
		case "dir":
			cfg.DurableDir = val
		case "mech":
			// Default mechanism for requests that name none: r2t, laplace,
			// fixed-tau, ls, or auto (validated on dataset load).
			cfg.DefaultMechanism = val
		case "partition":
			cfg.Partition = val
		case "shards":
			// name@addr pairs, +-separated; addr is the shard primary's
			// -repl-listen address the router scatters sub-queries to.
			for _, sh := range strings.Split(val, "+") {
				sh = strings.TrimSpace(sh)
				if sh == "" {
					continue
				}
				name, addr, ok := strings.Cut(sh, "@")
				if !ok || name == "" || addr == "" {
					return cfg, fmt.Errorf("dataset %q: bad shard %q (want name@addr)", cfg.Name, sh)
				}
				cfg.Shards = append(cfg.Shards, shard.Node{Name: name, Addr: addr})
			}
		default:
			return cfg, fmt.Errorf("dataset field %q: unknown key (want name/schema/data/eps/primary/dir/mech/partition/shards)", key)
		}
	}
	if cfg.Name == "" || cfg.SchemaPath == "" {
		return cfg, fmt.Errorf("dataset %q needs at least name= and schema=", v)
	}
	if len(cfg.Shards) > 0 && cfg.DataDir == "." {
		// A sharded dataset holds no router-local rows; drop the implicit
		// CSV directory default so the router doesn't reject its own cwd.
		cfg.DataDir = ""
	}
	if cfg.Epsilon <= 0 {
		return cfg, fmt.Errorf("dataset %q needs a positive eps= budget", cfg.Name)
	}
	return cfg, nil
}

func main() {
	var datasets datasetFlags
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		ledgerPath = flag.String("ledger", "r2td.ledger", "append-only budget ledger (JSON lines; replayed on startup)")
		workers    = flag.Int("workers", 0, "max concurrent mechanism runs (0 = GOMAXPROCS); excess requests get 429")
		execWork   = flag.Int("exec-workers", 0, "join-executor workers per query (0 = GOMAXPROCS, 1 = serial); answers are identical either way")
		pprofAddr  = flag.String("pprof-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060); keep it private — never the public -addr")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline on SIGTERM")
		seed       = flag.Int64("seed", 0, "deterministic noise seed, TESTS ONLY (0 = cryptographically seeded per query)")
		reqLog     = flag.String("request-log", "", "append one JSON line per request (outcome, latency, stage timings) to this OPERATOR-SIDE file; never expose it to analysts")
		ansMax     = flag.Int("answer-cache-max", 0, "max recorded releases in the free-replay cache, LRU-evicted (0 = default 65536); evicted replays re-charge ε")
		ansTTL     = flag.Duration("answer-cache-ttl", 0, "expire recorded releases after this age (0 = never); expired replays re-charge ε")
		shareCap   = flag.Int("join-share-cap", 0, "join cores cached per dataset for cross-query sharing (0 = engine default, negative = disable sharing); answers are identical either way")
		dataDir    = flag.String("data-dir", "", "make every dataset durable under DIR/<name>/ (WAL-backed tables, /v1/append enabled, crash recovery on startup); per-dataset dir= overrides")

		role       = flag.String("role", "primary", "node role: primary (owns the ε-ledger, admits charges), replica (pulls the primary's ledger, serves reads, redirects charges), or router (fronts a sharded cluster, owns the group ε-ledger, scatters sub-queries)")
		nodeName   = flag.String("node", "", "node name for epoch records, handshakes, and metrics (default: hostname)")
		replListen = flag.String("repl-listen", "", "primary: TCP address for the replication listener (empty = standalone). Replica: the address it will serve replicas on after /v1/promote")
		primary    = flag.String("primary-addr", "", "replica: the primary's -repl-listen address to pull from (required with -role=replica)")
		syncRepl   = flag.Int("sync-replicas", 0, "replicas that must acknowledge each charge before it is admitted (0 = async; production clusters should set 1+)")
		ackTimeout = flag.Duration("repl-ack-timeout", 5*time.Second, "how long a synchronous charge waits for replica acks before failing 503")
		dedupMax   = flag.Int("append-dedup-max", 0, "X-R2T-Append-Id idempotency window size, LRU-evicted (0 = default 4096)")

		shardTimeout = flag.Duration("shard-timeout", 0, "router: per-shard sub-query deadline (0 = default 5s)")
		shardHedge   = flag.Duration("shard-hedge", 0, "router: start a hedged duplicate sub-query after this silence (0 = timeout/4)")
	)
	flag.Var(&datasets, "dataset", "dataset declaration: name=N,schema=PATH,data=DIR,eps=E,primary=R1+R2,dir=WALDIR (repeatable; dir= makes the dataset durable; with -role=router add partition=REL,shards=n0@addr+n1@addr)")
	flag.Parse()
	if len(datasets) == 0 {
		fmt.Fprintln(os.Stderr, "r2td: at least one -dataset is required")
		flag.Usage()
		os.Exit(2)
	}
	if *dataDir != "" {
		for i := range datasets {
			if datasets[i].DurableDir == "" {
				datasets[i].DurableDir = filepath.Join(*dataDir, datasets[i].Name)
			}
		}
	}

	cfg := server.Config{
		Datasets:       datasets,
		LedgerPath:     *ledgerPath,
		Workers:        *workers,
		ExecWorkers:    *execWork,
		RequestTimeout: *timeout,
		Seed:           *seed,
		AnswerCacheMax: *ansMax,
		AnswerCacheTTL: *ansTTL,
		JoinShareCap:   *shareCap,
		Role:           *role,
		NodeName:       *nodeName,
		ReplListen:     *replListen,
		PrimaryAddr:    *primary,
		SyncReplicas:   *syncRepl,
		ReplAckTimeout: *ackTimeout,
		AppendDedupMax: *dedupMax,
		ShardTimeout:   *shardTimeout,
		ShardHedge:     *shardHedge,
	}
	var logFile *os.File
	if *reqLog != "" {
		f, err := os.OpenFile(*reqLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			fmt.Fprintln(os.Stderr, "r2td: request log:", err)
			os.Exit(1)
		}
		logFile = f
		cfg.RequestLog = f
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "r2td:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling is opt-in and isolated: the pprof handlers live on the
	// DefaultServeMux (via the net/http/pprof import), which is served ONLY
	// on this separate listener. The public API handler above is a private
	// mux, so enabling profiling can never expose /debug/pprof/ to tenants.
	if *pprofAddr != "" {
		go func() {
			pprofSrv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			fmt.Printf("r2td: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "r2td: pprof:", err)
			}
		}()
	}

	// Graceful drain: stop accepting on SIGTERM/SIGINT, let in-flight
	// queries finish (they still obey their own deadlines), then close the
	// ledger.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- httpSrv.Shutdown(drainCtx)
	}()

	// Chaos runs arm failpoints via R2T_FAULTS before exec. That is a
	// testing facility — injected faults break queries and can poison the
	// ledger on purpose — so an armed production binary must say so loudly.
	if fault.Active() {
		fmt.Fprintf(os.Stderr, "r2td: WARNING: fault injection armed via %s=%q — NOT for production\n",
			fault.EnvVar, os.Getenv(fault.EnvVar))
	}
	fmt.Printf("r2td: serving %s on %s (ledger %s)\n", datasets.String(), *addr, *ledgerPath)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "r2td:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "r2td: drain:", err)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "r2td:", err)
		os.Exit(1)
	}
	if logFile != nil {
		logFile.Close()
	}
	fmt.Println("r2td: drained, ledger closed")
}
