// Command experiments regenerates the paper's tables and figures on the
// synthetic substrates. Examples:
//
//	experiments -exp table2 -scale 0.25 -reps 5
//	experiments -exp all -out results.txt
//
// See EXPERIMENTS.md for the recorded reference run and the comparison with
// the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"r2t/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1,table2,table3,table4,table5,fig6,fig7,fig8,scaling,all")
		scale   = flag.Float64("scale", 0.25, "graph dataset scale (1.0 ≈ 1/100 of the paper's sizes)")
		sf      = flag.Float64("sf", 1, "TPC-H scale factor (micro units)")
		reps    = flag.Int("reps", 5, "repetitions per cell")
		eps     = flag.Float64("eps", 0.8, "privacy budget ε")
		seed    = flag.Int64("seed", 1, "base random seed")
		out     = flag.String("out", "", "write results to this file as well as stdout")
		verbose = flag.Bool("v", true, "stream per-cell progress to stderr")
		timeout = flag.Duration("celltimeout", 120*time.Second, "time budget per table cell")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := experiments.Config{
		Scale:       *scale,
		TPCHSF:      *sf,
		Reps:        *reps,
		Eps:         *eps,
		Seed:        *seed,
		Out:         w,
		Verbose:     *verbose,
		CellTimeout: *timeout,
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Fprintf(w, "--- running %s ---\n", name)
		fn()
		fmt.Fprintf(w, "--- %s done in %s ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == name || s == "all" {
				return true
			}
		}
		return false
	}

	if want("table1") {
		run("table1", func() { experiments.Table1(cfg) })
	}
	if want("table2") {
		run("table2", func() { experiments.Table2(cfg) })
	}
	if want("fig6") {
		run("fig6", func() { experiments.Fig6(cfg) })
	}
	if want("table3") {
		run("table3", func() { experiments.Table3(cfg) })
	}
	if want("table4") {
		run("table4", func() { experiments.Table4(cfg) })
	}
	if want("table5") {
		run("table5", func() { experiments.Table5(cfg) })
	}
	if want("fig7") {
		run("fig7", func() { experiments.Fig7(cfg) })
	}
	if want("fig8") {
		run("fig8", func() { experiments.Fig8(cfg) })
	}
	if want("scaling") {
		run("scaling", func() { experiments.FigScaling(cfg) })
	}
}
