// Command benchjson measures the repo's recorded perf trajectories with
// testing.Benchmark and writes them as JSON.
//
// BENCH_R2T.json covers the τ-grid workloads (the same ones BenchmarkR2TGrid
// runs): for every workload it times the cold per-race baseline (one full
// lp.Solve pipeline per τ, the pre-grid behaviour), the grid path
// (production: shared skeleton, cold per-τ simplex), and the warm-start mode,
// and verifies that cold and grid objectives agree bit-for-bit before
// recording anything.
//
// BENCH_EXEC.json covers the join executor (BenchmarkExecJoin /
// BenchmarkGroupBy): the legacy map-based serial executor vs the indexed
// slab-allocated one at one worker and at GOMAXPROCS, plus per-group joins vs
// the single-join group-by, plus the mixed-tenants join-sharing workloads (N
// aggregate variants over one join core: per-tenant probe passes vs one
// shared probe pass; must reach >= 1.5x). Results are compared row-for-row
// (ψ bits, resolved provenance refs, projection groups) — and, for
// mixed-tenants, released answer for released answer against seeded solo
// queries — before any number is recorded.
//
//	go run ./cmd/benchjson            # writes BENCH_R2T.json and BENCH_EXEC.json
//	go run ./cmd/benchjson -only exec -exec-o out.json -sf 0.1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"r2t"
	"r2t/internal/exec"
	"r2t/internal/experiments"
	"r2t/internal/obs"
)

type mode struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_cold,omitempty"`
}

type workloadResult struct {
	Workload    string          `json:"workload"`
	Races       int             `json:"races"`
	Occurrences int             `json:"occurrences"`
	BitwiseEq   bool            `json:"grid_bitwise_equals_cold"`
	Modes       map[string]mode `json:"modes"`
	// Profile is one instrumented grid solve's stage/counter breakdown
	// (simplex iterations and pivots, components, τ-monotone redundancy
	// skips) — the work the timings above are made of.
	Profile *obs.Profile `json:"profile,omitempty"`
}

func measure(f func() ([]float64, error)) (mode, error) {
	var inner error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f(); err != nil {
				inner = err
				b.Fatal(err)
			}
		}
	})
	if inner != nil {
		return mode{}, inner
	}
	return mode{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchjson:"}, args...)...)
	os.Exit(1)
}

func writeDoc(out, description string, workloads any) {
	doc := struct {
		Description string `json:"description"`
		Command     string `json:"command"`
		Workloads   any    `json:"workloads"`
	}{
		Description: description,
		Command:     "go run ./cmd/benchjson",
		Workloads:   workloads,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", out)
}

func main() {
	var (
		out     = flag.String("o", "BENCH_R2T.json", "τ-grid output file")
		execOut = flag.String("exec-o", "BENCH_EXEC.json", "join-executor output file")
		only    = flag.String("only", "all", "which suite to run: grid, exec, or all")
		sf      = flag.Float64("sf", 0.05, "TPC-H scale factor for the tpch workloads")
	)
	flag.Parse()

	if *only == "all" || *only == "grid" {
		runGrid(*out, *sf)
	}
	if *only == "all" || *only == "exec" {
		runExec(*execOut, *sf)
	}
}

func runGrid(out string, sf float64) {
	workloads, err := experiments.GridWorkloads(sf)
	if err != nil {
		fatal(err)
	}

	var results []any
	for i := range workloads {
		w := &workloads[i]

		// Correctness gate: the grid objectives must be bit-identical to the
		// cold per-race pipeline's before any number is recorded.
		coldVals, err := w.SolveCold()
		if err != nil {
			fatal(w.Name, err)
		}
		gridVals, err := w.SolveGrid()
		if err != nil {
			fatal(w.Name, err)
		}
		eq := len(coldVals) == len(gridVals)
		for j := range coldVals {
			if !eq || math.Float64bits(coldVals[j]) != math.Float64bits(gridVals[j]) {
				eq = false
				break
			}
		}
		if !eq {
			fatal(w.Name + ": grid values diverge from cold — refusing to record")
		}

		res := workloadResult{
			Workload:    w.Name,
			Races:       len(w.Taus),
			Occurrences: len(w.Occ.Sets),
			BitwiseEq:   true,
			Modes:       map[string]mode{},
		}
		cold, err := measure(w.SolveCold)
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["cold"] = cold
		grid, err := measure(w.SolveGrid)
		if err != nil {
			fatal(w.Name, err)
		}
		grid.Speedup = round2(float64(cold.NsPerOp) / float64(grid.NsPerOp))
		res.Modes["grid"] = grid
		warm, err := measure(w.SolveGridWarm)
		if err != nil {
			fatal(w.Name, err)
		}
		warm.Speedup = round2(float64(cold.NsPerOp) / float64(warm.NsPerOp))
		res.Modes["grid-warm"] = warm

		// One instrumented grid solve for the stage/counter breakdown. The
		// recorder is pure observation (estimates stay bit-identical), and is
		// detached afterwards so it cannot skew later measurements.
		rec := obs.NewRecorder()
		w.Tr.SetRecorder(rec)
		if _, err := w.SolveGrid(); err != nil {
			fatal(w.Name, err)
		}
		w.Tr.SetRecorder(nil)
		res.Profile = rec.Snapshot()

		fmt.Fprintf(os.Stderr, "%-16s cold %8dns  grid %8dns (%.2fx, allocs %d→%d)  warm %8dns (%.2fx)\n",
			w.Name, cold.NsPerOp, grid.NsPerOp, grid.Speedup,
			cold.AllocsPerOp, grid.AllocsPerOp, warm.NsPerOp, warm.Speedup)
		results = append(results, res)
	}

	results = append(results, runPartition(sf)...)
	results = append(results, runChooser())

	writeDoc(out, "Full τ-grid solve (every race R2T runs for GS_Q=1024): cold per-race lp.Solve pipeline vs amortized lp.GridSolver. grid is the production path (bit-identical objectives, enforced above); grid-warm chains simplex warm starts across τ (exact but not bit-stable, see DESIGN.md). The partition workloads race the production grid LP (grid-lp) against the closed-form partition truncator (partition) on single-FK SJA shapes — bit-identical values enforced, speedup gated >= 5x. The chooser workload runs a mixed query set end to end under Mechanism \"auto\" vs always-R2T — auto is gated never slower, and queries where auto falls back to R2T gate on bit-identical seeded releases.", results)
}

// partitionResult is one fast-path workload's record: the production grid LP
// vs the closed-form partition truncator on a partition-shaped instance.
type partitionResult struct {
	Workload    string          `json:"workload"`
	Races       int             `json:"races"`
	Occurrences int             `json:"occurrences"`
	BitwiseEq   bool            `json:"partition_bitwise_equals_lp"`
	Modes       map[string]mode `json:"modes"`
}

// minPartitionSpeedup is the enforced fast-path bar: the closed-form
// truncator must clear 5x over the grid LP or the number is not recorded.
const minPartitionSpeedup = 5.0

func runPartition(sf float64) []any {
	workloads, err := experiments.PartitionWorkloads(sf)
	if err != nil {
		fatal(err)
	}
	var results []any
	for i := range workloads {
		w := &workloads[i]

		// Correctness gate first: the partition values must be bit-identical
		// to the simplex pipeline's before any number is recorded. A fast
		// wrong truncator is not a speedup — and here it would also be a
		// different release distribution.
		lpVals, err := w.SolveLP()
		if err != nil {
			fatal(w.Name, err)
		}
		ptVals, err := w.SolvePartition()
		if err != nil {
			fatal(w.Name, err)
		}
		if len(lpVals) != len(ptVals) {
			fatal(w.Name + ": value count mismatch")
		}
		for j := range lpVals {
			if math.Float64bits(lpVals[j]) != math.Float64bits(ptVals[j]) {
				fatal(fmt.Sprintf("%s: partition value diverges from LP at τ=%g (%x vs %x) — refusing to record",
					w.Name, w.Taus[j], math.Float64bits(ptVals[j]), math.Float64bits(lpVals[j])))
			}
		}

		res := partitionResult{
			Workload:    w.Name,
			Races:       len(w.Taus),
			Occurrences: len(w.Occ.Sets),
			BitwiseEq:   true,
			Modes:       map[string]mode{},
		}
		lpMode, err := measure(w.SolveLP)
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["grid-lp"] = lpMode
		pt, err := measure(w.SolvePartition)
		if err != nil {
			fatal(w.Name, err)
		}
		pt.Speedup = round2(float64(lpMode.NsPerOp) / float64(pt.NsPerOp))
		res.Modes["partition"] = pt
		if pt.Speedup < minPartitionSpeedup {
			fatal(fmt.Sprintf("%s: partition path is only %.2fx the grid LP (want >= %.0fx) — refusing to record",
				w.Name, pt.Speedup, minPartitionSpeedup))
		}

		fmt.Fprintf(os.Stderr, "%-28s grid-lp %9dns  partition %8dns (%.2fx, allocs %d→%d)\n",
			w.Name, lpMode.NsPerOp, pt.NsPerOp, pt.Speedup, lpMode.AllocsPerOp, pt.AllocsPerOp)
		results = append(results, res)
	}
	return results
}

// chooserResult records the mixed-workload mechanism chooser run.
type chooserResult struct {
	Workload string `json:"workload"`
	Queries  int    `json:"queries"`
	// Selected counts fresh releases by the backend auto picked — the
	// data-independent decision record.
	Selected map[string]int `json:"auto_selected"`
	// R2TBitwiseEq: queries where auto fell back to R2T released answers
	// bit-identical to the always-R2T run under the same seed.
	R2TBitwiseEq bool            `json:"r2t_fallback_bitwise_equal"`
	Modes        map[string]mode `json:"modes"`
}

// chooserQuery is one item of the mixed chooser workload.
type chooserQuery struct {
	sql    string
	target float64 // 0 = no error target (auto must fall back to R2T)
}

// runChooser measures the cost-based chooser end to end on a mixed workload:
// half the queries carry a loose error target (a cheap a-priori-bounded
// backend qualifies), half carry none (auto falls back to R2T). Gates: auto
// is never slower than always-R2T overall, and the R2T-fallback queries
// release bit-identical seeded answers on both runs.
func runChooser() any {
	db := chooserDB()
	queries := []chooserQuery{
		{`SELECT COUNT(*) FROM Orders`, 1e6},
		{`SELECT SUM(Orders.price) FROM Orders`, 1e7},
		{`SELECT COUNT(*) FROM Orders WHERE Orders.price > 2`, 1e6},
		{`SELECT SUM(Orders.price) FROM Orders WHERE Orders.price < 5`, 1e7},
		{`SELECT COUNT(*) FROM Orders`, 0},
		{`SELECT SUM(Orders.price) FROM Orders`, 0},
	}
	opts := func(q chooserQuery, auto bool, seed int64) r2t.Options {
		o := r2t.Options{
			Epsilon: 1, GSQ: 1024, Primary: []string{"Customer"},
			Noise: r2t.NewNoiseSource(seed), EarlyStop: true,
		}
		if auto {
			o.Mechanism = "auto"
			o.ErrorTarget = q.target
		}
		return o
	}
	runAll := func(auto bool) ([]*r2t.Answer, error) {
		answers := make([]*r2t.Answer, len(queries))
		for i, q := range queries {
			ans, err := db.Query(q.sql, opts(q, auto, int64(100+i)))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.sql, err)
			}
			answers[i] = ans
		}
		return answers, nil
	}

	// Gates before measuring: auto must pick a cheap bounded backend for every
	// targeted query, fall back to R2T for the rest, and the fallbacks must
	// release bit-identical answers to the always-R2T run.
	always, err := runAll(false)
	if err != nil {
		fatal("chooser", err)
	}
	auto, err := runAll(true)
	if err != nil {
		fatal("chooser", err)
	}
	selected := map[string]int{}
	for i, q := range queries {
		selected[auto[i].Mechanism]++
		if q.target > 0 && auto[i].Mechanism == "r2t" {
			fatal(fmt.Sprintf("chooser: %s with target %g still ran r2t — refusing to record", q.sql, q.target))
		}
		if q.target == 0 {
			if auto[i].Mechanism != "r2t" {
				fatal(fmt.Sprintf("chooser: %s without target ran %q — refusing to record", q.sql, auto[i].Mechanism))
			}
			if math.Float64bits(auto[i].Estimate) != math.Float64bits(always[i].Estimate) {
				fatal(fmt.Sprintf("chooser: %s r2t fallback release diverges from always-r2t — refusing to record", q.sql))
			}
		}
	}

	res := chooserResult{
		Workload:     "mixed-chooser",
		Queries:      len(queries),
		Selected:     selected,
		R2TBitwiseEq: true,
		Modes:        map[string]mode{},
	}
	alwaysMode, err := measure(func() ([]float64, error) { _, err := runAll(false); return nil, err })
	if err != nil {
		fatal("chooser", err)
	}
	res.Modes["always-r2t"] = alwaysMode
	autoMode, err := measure(func() ([]float64, error) { _, err := runAll(true); return nil, err })
	if err != nil {
		fatal("chooser", err)
	}
	autoMode.Speedup = round2(float64(alwaysMode.NsPerOp) / float64(autoMode.NsPerOp))
	res.Modes["chooser-auto"] = autoMode
	// The acceptance bar: auto never slower than always-R2T on the mix.
	if autoMode.Speedup < 1.0 {
		fatal(fmt.Sprintf("chooser: auto is %.2fx always-r2t (want >= 1.0x — never slower) — refusing to record", autoMode.Speedup))
	}

	fmt.Fprintf(os.Stderr, "%-28s always-r2t %8dns  chooser-auto %8dns (%.2fx) selected %v\n",
		"mixed-chooser", alwaysMode.NsPerOp, autoMode.NsPerOp, autoMode.Speedup, selected)
	return res
}

// chooserDB builds the chooser workload's instance: a single-FK shop at a
// size where R2T's LP work is visible, with a skewed ownership distribution.
func chooserDB() *r2t.DB {
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Customer", Attrs: []string{"ID"}, PK: "ID"},
		&r2t.Relation{Name: "Orders", Attrs: []string{"cid", "price"},
			FKs: []r2t.FK{{Attr: "cid", Ref: "Customer"}}},
	)
	db := r2t.NewDB(s)
	const customers = 2000
	for i := int64(0); i < customers; i++ {
		if err := db.Insert("Customer", r2t.Int(i)); err != nil {
			fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(17))
	for k := 0; k < 20000; k++ {
		owner := int64(float64(customers) * rng.Float64() * rng.Float64())
		if owner >= customers {
			owner = customers - 1
		}
		if err := db.Insert("Orders", r2t.Int(owner), r2t.Int(1+int64(rng.Intn(9)))); err != nil {
			fatal(err)
		}
	}
	if err := db.CheckIntegrity(); err != nil {
		fatal(err)
	}
	return db
}

// execMode is one executor configuration's measurement. Unlike the grid
// modes, speedups are relative to the legacy map-based executor.
type execMode struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
}

type execResult struct {
	Workload  string              `json:"workload"`
	Rows      int                 `json:"join_rows"`
	Groups    int                 `json:"groups,omitempty"`
	Tenants   int                 `json:"tenants,omitempty"`
	BitwiseEq bool                `json:"bitwise_equals_baseline"`
	Modes     map[string]execMode `json:"modes"`
	// HitRate is the build-side index cache hit rate across an
	// append-interleaved run (gated >= 0.9: the incremental extension path
	// must keep the cache warm through write bursts).
	HitRate float64 `json:"index_cache_hit_rate,omitempty"`
	// AppendCost is the O(delta) evidence for the same workloads.
	AppendCost *appendCost `json:"append_cost,omitempty"`
	// Profile is one instrumented run's stage/counter breakdown (rows
	// probed/emitted, index-cache traffic, arena bytes).
	Profile *obs.Profile `json:"profile,omitempty"`
}

// appendCost records per-burst append cost against a warmed index cache at
// two table sizes. The ratio is gated well under the table-size ratio:
// extension work scales with the appended delta, not the table.
type appendCost struct {
	DeltaRows    int     `json:"delta_rows"`
	SmallBase    int     `json:"small_base_rows"`
	BigBase      int     `json:"big_base_rows"`
	SmallNsPerOp int64   `json:"small_ns_per_burst"`
	BigNsPerOp   int64   `json:"big_ns_per_burst"`
	CostRatio    float64 `json:"cost_ratio"`
	TableRatio   float64 `json:"table_ratio"`
	MaxCostRatio float64 `json:"max_cost_ratio"` // the enforced gate
}

func measureExec(f func() error) (execMode, error) {
	var inner error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := f(); err != nil {
				inner = err
				b.Fatal(err)
			}
		}
	})
	if inner != nil {
		return execMode{}, inner
	}
	return execMode{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func runExec(out string, sf float64) {
	joins, err := experiments.ExecWorkloads(sf)
	if err != nil {
		fatal(err)
	}

	var results []execResult
	for i := range joins {
		w := &joins[i]

		// Correctness gate: every mode must reproduce the legacy executor's
		// result bit-for-bit (row order, ψ, resolved provenance refs) before
		// its number is recorded. A fast wrong join is not a speedup.
		base, err := w.RunBaseline()
		if err != nil {
			fatal(w.Name, err)
		}
		for _, workers := range []int{1, 0} {
			got, err := w.Run(workers)
			if err != nil {
				fatal(w.Name, err)
			}
			if !experiments.SameResult(base, got) {
				fatal(w.Name + ": indexed executor diverges from baseline — refusing to record")
			}
		}

		res := execResult{Workload: w.Name, Rows: len(base.Rows), BitwiseEq: true, Modes: map[string]execMode{}}
		baseline, err := measureExec(func() error { _, err := w.RunBaseline(); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["baseline"] = baseline
		serial, err := measureExec(func() error { _, err := w.Run(1); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		serial.Speedup = round2(float64(baseline.NsPerOp) / float64(serial.NsPerOp))
		res.Modes["serial"] = serial
		parallel, err := measureExec(func() error { _, err := w.Run(0); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		parallel.Speedup = round2(float64(baseline.NsPerOp) / float64(parallel.NsPerOp))
		res.Modes["parallel"] = parallel

		rec := obs.NewRecorder()
		if _, err := exec.RunConfig(w.Plan, w.Inst, exec.Config{Recorder: rec}); err != nil {
			fatal(w.Name, err)
		}
		res.Profile = rec.Snapshot()

		fmt.Fprintf(os.Stderr, "%-16s baseline %8dns  serial %8dns (%.2fx, allocs %d→%d)  parallel %8dns (%.2fx)\n",
			w.Name, baseline.NsPerOp, serial.NsPerOp, serial.Speedup,
			baseline.AllocsPerOp, serial.AllocsPerOp, parallel.NsPerOp, parallel.Speedup)
		results = append(results, res)
	}

	groupbys, err := experiments.GroupByWorkloads(sf)
	if err != nil {
		fatal(err)
	}
	for i := range groupbys {
		w := &groupbys[i]

		// Gate: each partition of the single join must match the per-group
		// predicated join row-for-row.
		perGroup, err := w.RunPerGroup()
		if err != nil {
			fatal(w.Name, err)
		}
		parts, err := w.RunSingleJoin(1)
		if err != nil {
			fatal(w.Name, err)
		}
		rows := 0
		for g := range perGroup {
			if !experiments.SameResult(perGroup[g], parts[g]) {
				fatal(w.Name + ": single-join partition diverges from per-group join — refusing to record")
			}
			rows += len(perGroup[g].Rows)
		}

		res := execResult{Workload: w.Name, Rows: rows, Groups: len(w.Groups), BitwiseEq: true, Modes: map[string]execMode{}}
		pg, err := measureExec(func() error { _, err := w.RunPerGroup(); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["per-group"] = pg
		single, err := measureExec(func() error { _, err := w.RunSingleJoin(1); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		single.Speedup = round2(float64(pg.NsPerOp) / float64(single.NsPerOp))
		res.Modes["single-join"] = single

		rec := obs.NewRecorder()
		if _, err := exec.RunPartitioned(w.Plan, w.Inst, exec.Config{Workers: 1, Recorder: rec}, w.GroupVar, w.Groups, false); err != nil {
			fatal(w.Name, err)
		}
		res.Profile = rec.Snapshot()

		fmt.Fprintf(os.Stderr, "%-16s per-group %8dns  single-join %8dns (%.2fx, allocs %d→%d)\n",
			w.Name, pg.NsPerOp, single.NsPerOp, single.Speedup, pg.AllocsPerOp, single.AllocsPerOp)
		results = append(results, res)
	}

	shares, err := experiments.ShareWorkloads(sf)
	if err != nil {
		fatal(err)
	}
	for i := range shares {
		w := &shares[i]

		// Gate 1 (exec level): one shared probe pass must hand every tenant
		// the bit-identical result of running its own probe pass.
		unsharedRes, err := w.RunUnshared()
		if err != nil {
			fatal(w.Name, err)
		}
		sharedRes, err := w.RunShared()
		if err != nil {
			fatal(w.Name, err)
		}
		rows := 0
		for t := range w.Plans {
			if !experiments.SameResult(unsharedRes[t], sharedRes[t]) {
				fatal(w.Name + ": shared aggregate view diverges from unshared probe pass — refusing to record")
			}
		}
		if len(sharedRes) > 0 {
			rows = len(sharedRes[0].Rows)
		}
		// Gate 2 (end to end): with seeded noise, the batched entry point's
		// released answers must be bit-identical to issuing each tenant's
		// query alone with sharing disabled.
		if err := shareAnswerGate(w); err != nil {
			fatal(w.Name, err)
		}

		res := execResult{Workload: w.Name, Rows: rows, Tenants: len(w.Plans), BitwiseEq: true, Modes: map[string]execMode{}}
		unshared, err := measureExec(func() error { _, err := w.RunUnshared(); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["unshared"] = unshared
		shared, err := measureExec(func() error { _, err := w.RunShared(); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		shared.Speedup = round2(float64(unshared.NsPerOp) / float64(shared.NsPerOp))
		res.Modes["shared"] = shared
		// The acceptance bar for cross-query join sharing: well below this,
		// something regressed (the shared path re-probing, the core being
		// copied per tenant) and the number must not be recorded.
		if shared.Speedup < 1.5 {
			fatal(fmt.Sprintf("%s: shared path is only %.2fx the unshared path (want >= 1.5x) — refusing to record", w.Name, shared.Speedup))
		}

		fmt.Fprintf(os.Stderr, "%-20s %d tenants  unshared %8dns  shared %8dns (%.2fx, allocs %d→%d)\n",
			w.Name, len(w.Plans), unshared.NsPerOp, shared.NsPerOp, shared.Speedup,
			unshared.AllocsPerOp, shared.AllocsPerOp)
		results = append(results, res)
	}

	results = append(results, runAppend()...)

	writeDoc(out, "Join executor: legacy per-row-map serial joins (baseline) vs the indexed, slab-allocated executor at 1 worker (serial) and GOMAXPROCS workers (parallel); group-by as G predicated joins (per-group) vs one shared join partitioned by group value (single-join); mixed-tenants join sharing — N aggregate variants over one join core, each with its own probe pass (unshared) vs one probe pass fanned into N aggregate views (shared); and the append-interleaved workload — a write burst between every pair of queries, incremental O(delta) index extension (extend) vs rebuilding the build-side index every query (invalidate, the pre-segstore behaviour at this cadence), with enforced gates on hit rate (>= 0.9), extend speedup, and per-burst append cost staying flat as the table grows 8x. All modes produce bit-identical rows, ψ values, and provenance refs, and the mixed-tenants workloads additionally gate on bit-identical seeded released answers end to end (enforced above).", results)
}

// runAppend measures the append-interleaved workloads and enforces the
// durable-store performance contract before recording anything:
//
//  1. correctness — the final interleaved result (both modes) must be
//     row-for-row identical to a from-scratch load of the same rows;
//  2. cache survival — hit rate >= 0.9 across the bursts, zero
//     invalidations, every burst extending in place;
//  3. extension beats rebuilding — the extend mode must outrun the
//     invalidate mode;
//  4. O(delta) — per-burst append cost against a warmed cache must stay
//     within maxAppendCostRatio while the base table grows 8x.
func runAppend() []execResult {
	workloads, err := experiments.AppendWorkloads()
	if err != nil {
		fatal(err)
	}
	var results []execResult
	for i := range workloads {
		w := &workloads[i]

		truth, err := w.RunPreloaded()
		if err != nil {
			fatal(w.Name, err)
		}
		extRes, extStats, err := w.RunInterleaved(true)
		if err != nil {
			fatal(w.Name, err)
		}
		invRes, _, err := w.RunInterleaved(false)
		if err != nil {
			fatal(w.Name, err)
		}
		if !experiments.SameResult(truth, extRes) || !experiments.SameResult(truth, invRes) {
			fatal(w.Name + ": interleaved result diverges from a from-scratch load — refusing to record")
		}
		hitRate := float64(extStats.Hits) / float64(extStats.Hits+extStats.Misses)
		if hitRate < 0.9 {
			fatal(fmt.Sprintf("%s: index-cache hit rate %.3f under appends (want >= 0.9) — refusing to record", w.Name, hitRate))
		}
		if extStats.Invalidations != 0 || extStats.Rebuilds != 0 || extStats.Extensions < uint64(w.Bursts) {
			fatal(fmt.Sprintf("%s: appends did not extend in place (%+v) — refusing to record", w.Name, extStats))
		}

		res := execResult{
			Workload:  w.Name,
			Rows:      len(truth.Rows),
			BitwiseEq: true,
			HitRate:   round2(hitRate*100) / 100,
			Modes:     map[string]execMode{},
		}
		inv, err := measureExec(func() error { _, _, err := w.RunInterleaved(false); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		res.Modes["invalidate"] = inv
		ext, err := measureExec(func() error { _, _, err := w.RunInterleaved(true); return err })
		if err != nil {
			fatal(w.Name, err)
		}
		ext.Speedup = round2(float64(inv.NsPerOp) / float64(ext.NsPerOp))
		res.Modes["extend"] = ext
		if ext.Speedup < 1.1 {
			fatal(fmt.Sprintf("%s: extension is only %.2fx invalidate-and-rebuild (want >= 1.1x) — refusing to record", w.Name, ext.Speedup))
		}

		const (
			smallBase          = 10000
			bigBase            = 80000
			costBursts         = 100
			costReps           = 5
			maxAppendCostRatio = 4.0 // table grows 8x; cost must not follow
		)
		small, err := w.AppendCost(smallBase, costBursts, costReps)
		if err != nil {
			fatal(w.Name, err)
		}
		big, err := w.AppendCost(bigBase, costBursts, costReps)
		if err != nil {
			fatal(w.Name, err)
		}
		ratio := float64(big) / float64(small)
		if ratio > maxAppendCostRatio {
			fatal(fmt.Sprintf("%s: per-burst append cost grew %.2fx across an 8x table (want <= %.1fx — extension must be O(delta)) — refusing to record", w.Name, ratio, maxAppendCostRatio))
		}
		res.AppendCost = &appendCost{
			DeltaRows:    w.DeltaRows,
			SmallBase:    smallBase,
			BigBase:      bigBase,
			SmallNsPerOp: small.Nanoseconds(),
			BigNsPerOp:   big.Nanoseconds(),
			CostRatio:    round2(ratio),
			TableRatio:   float64(bigBase) / float64(smallBase),
			MaxCostRatio: maxAppendCostRatio,
		}

		fmt.Fprintf(os.Stderr, "%-20s invalidate %8dns  extend %8dns (%.2fx)  hit rate %.3f  append/burst %s→%s (%.2fx over 8x table)\n",
			w.Name, inv.NsPerOp, ext.NsPerOp, ext.Speedup, hitRate, small, big, ratio)
		results = append(results, res)
	}
	return results
}

// shareAnswerGate checks the released-answer half of the join-sharing
// equivalence gate: every tenant's QueryBatch answer must be bit-identical
// (estimate, true answer, τ*) to a solo db.Query of the same seeded options
// with sharing disabled.
func shareAnswerGate(w *experiments.ShareWorkload) error {
	db := r2t.NewDBWithInstance(w.Inst)
	opts := func(i int, disable bool) r2t.Options {
		return r2t.Options{
			Epsilon: 0.5, GSQ: 1024, Primary: w.Primary, Beta: 0.1,
			Noise: r2t.NewNoiseSource(int64(1000 + i)), EarlyStop: true,
			DisableJoinShare: disable,
		}
	}
	batch := make([]r2t.BatchQuery, len(w.SQLs))
	for i, q := range w.SQLs {
		batch[i] = r2t.BatchQuery{SQL: q, Opt: opts(i, false)}
	}
	got, err := db.QueryBatch(context.Background(), batch)
	if err != nil {
		return err
	}
	for i, q := range w.SQLs {
		want, err := db.Query(q, opts(i, true))
		if err != nil {
			return err
		}
		if math.Float64bits(got[i].Estimate) != math.Float64bits(want.Estimate) ||
			math.Float64bits(got[i].TrueAnswer) != math.Float64bits(want.TrueAnswer) ||
			math.Float64bits(got[i].TauStar) != math.Float64bits(want.TauStar) {
			return fmt.Errorf("tenant %d (%s): batched released answer diverges from solo unshared answer — refusing to record", i, q)
		}
	}
	return nil
}
