// Command benchjson measures the τ-grid workloads (the same ones
// BenchmarkR2TGrid runs) with testing.Benchmark and writes the numbers to
// BENCH_R2T.json, the repo's recorded perf trajectory for the amortized grid
// solver. For every workload it times the cold per-race baseline (one full
// lp.Solve pipeline per τ, the pre-grid behaviour), the grid path
// (production: shared skeleton, cold per-τ simplex), and the warm-start mode,
// and verifies that cold and grid objectives agree bit-for-bit before
// recording anything.
//
//	go run ./cmd/benchjson            # writes BENCH_R2T.json in the cwd
//	go run ./cmd/benchjson -o out.json -sf 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"

	"r2t/internal/experiments"
)

type mode struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_cold,omitempty"`
}

type workloadResult struct {
	Workload    string          `json:"workload"`
	Races       int             `json:"races"`
	Occurrences int             `json:"occurrences"`
	BitwiseEq   bool            `json:"grid_bitwise_equals_cold"`
	Modes       map[string]mode `json:"modes"`
}

func measure(f func() ([]float64, error)) (mode, error) {
	var inner error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f(); err != nil {
				inner = err
				b.Fatal(err)
			}
		}
	})
	if inner != nil {
		return mode{}, inner
	}
	return mode{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

func main() {
	var (
		out = flag.String("o", "BENCH_R2T.json", "output file")
		sf  = flag.Float64("sf", 0.05, "TPC-H scale factor for the tpch workload")
	)
	flag.Parse()

	workloads, err := experiments.GridWorkloads(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var results []workloadResult
	for i := range workloads {
		w := &workloads[i]

		// Correctness gate: the grid objectives must be bit-identical to the
		// cold per-race pipeline's before any number is recorded.
		coldVals, err := w.SolveCold()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", w.Name, err)
			os.Exit(1)
		}
		gridVals, err := w.SolveGrid()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", w.Name, err)
			os.Exit(1)
		}
		eq := len(coldVals) == len(gridVals)
		for j := range coldVals {
			if !eq || math.Float64bits(coldVals[j]) != math.Float64bits(gridVals[j]) {
				eq = false
				break
			}
		}
		if !eq {
			fmt.Fprintf(os.Stderr, "benchjson: %s: grid values diverge from cold — refusing to record\n", w.Name)
			os.Exit(1)
		}

		res := workloadResult{
			Workload:    w.Name,
			Races:       len(w.Taus),
			Occurrences: len(w.Occ.Sets),
			BitwiseEq:   true,
			Modes:       map[string]mode{},
		}
		cold, err := measure(w.SolveCold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", w.Name, err)
			os.Exit(1)
		}
		res.Modes["cold"] = cold
		grid, err := measure(w.SolveGrid)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", w.Name, err)
			os.Exit(1)
		}
		grid.Speedup = round2(float64(cold.NsPerOp) / float64(grid.NsPerOp))
		res.Modes["grid"] = grid
		warm, err := measure(w.SolveGridWarm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", w.Name, err)
			os.Exit(1)
		}
		warm.Speedup = round2(float64(cold.NsPerOp) / float64(warm.NsPerOp))
		res.Modes["grid-warm"] = warm

		fmt.Fprintf(os.Stderr, "%-16s cold %8dns  grid %8dns (%.2fx, allocs %d→%d)  warm %8dns (%.2fx)\n",
			w.Name, cold.NsPerOp, grid.NsPerOp, grid.Speedup,
			cold.AllocsPerOp, grid.AllocsPerOp, warm.NsPerOp, warm.Speedup)
		results = append(results, res)
	}

	doc := struct {
		Description string           `json:"description"`
		Command     string           `json:"command"`
		Workloads   []workloadResult `json:"workloads"`
	}{
		Description: "Full τ-grid solve (every race R2T runs for GS_Q=1024): cold per-race lp.Solve pipeline vs amortized lp.GridSolver. grid is the production path (bit-identical objectives, enforced above); grid-warm chains simplex warm starts across τ (exact but not bit-stable, see DESIGN.md).",
		Command:     "go run ./cmd/benchjson",
		Workloads:   results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}
