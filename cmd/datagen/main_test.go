package main

import (
	"os"
	"path/filepath"
	"testing"

	"r2t/internal/graph"
	"r2t/internal/schema"
	"r2t/internal/storage"
)

func TestWriteGraphRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := graph.GenRoad(10, 10, 3)
	if err := writeGraph(g, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Node.csv", "Edge.csv", "graph.schema"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	// Reload through the storage layer and verify shape.
	s := schema.MustNew(
		&schema.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&schema.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []schema.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	inst := storage.NewInstance(s)
	if err := inst.ReadCSVFile("Node", filepath.Join(dir, "Node.csv")); err != nil {
		t.Fatal(err)
	}
	if err := inst.ReadCSVFile("Edge", filepath.Join(dir, "Edge.csv")); err != nil {
		t.Fatal(err)
	}
	if err := inst.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if inst.Table("Node").Len() != g.N {
		t.Fatalf("nodes: %d, want %d", inst.Table("Node").Len(), g.N)
	}
	// Each undirected edge is stored in both directions.
	if inst.Table("Edge").Len() != 2*g.NumEdges() {
		t.Fatalf("edge rows: %d, want %d", inst.Table("Edge").Len(), 2*g.NumEdges())
	}
}
