// Command datagen emits the synthetic datasets as CSV files consumable by
// cmd/r2t: either one of the graph stand-ins of Table 1 (Node.csv, Edge.csv
// plus a matching .schema file) or a TPC-H instance (one CSV per relation).
//
//	datagen -kind graph -name deezer-sim -scale 0.25 -out ./data
//	datagen -kind tpch -sf 1 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"r2t/internal/graph"
	"r2t/internal/schema"
	"r2t/internal/storage"
	"r2t/internal/tpch"
	"r2t/internal/value"
)

func main() {
	var (
		kind  = flag.String("kind", "graph", "graph or tpch")
		name  = flag.String("name", "deezer-sim", "graph dataset name (see Table 1)")
		scale = flag.Float64("scale", 0.25, "graph scale")
		sf    = flag.Float64("sf", 1, "TPC-H scale factor")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	switch *kind {
	case "graph":
		d := graph.DatasetByName(*name)
		if d == nil {
			fatal(fmt.Errorf("unknown dataset %q", *name))
		}
		g := d.Build(*scale, *seed)
		if err := writeGraph(g, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d nodes, %d edges (max degree %d) to %s\n",
			d.Name, g.N, g.NumEdges(), g.MaxDegree(), *out)
	case "tpch":
		inst := tpch.Generate(tpch.GenOptions{SF: *sf, Seed: *seed})
		for _, rel := range inst.Schema.Names() {
			if err := inst.WriteCSVFile(rel, filepath.Join(*out, rel+".csv")); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(*out, "tpch.schema"), []byte(tpchSchemaText), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote TPC-H SF=%g (%d tuples) to %s\n", *sf, inst.TotalRows(), *out)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func writeGraph(g *graph.Graph, dir string) error {
	s := schema.MustNew(
		&schema.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&schema.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []schema.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	inst := storage.NewInstance(s)
	for u := 0; u < g.N; u++ {
		inst.MustInsert("Node", storage.Row{value.IntV(int64(u))})
		for _, v := range g.Adj[u] {
			inst.MustInsert("Edge", storage.Row{value.IntV(int64(u)), value.IntV(int64(v))})
		}
	}
	if err := inst.WriteCSVFile("Node", filepath.Join(dir, "Node.csv")); err != nil {
		return err
	}
	if err := inst.WriteCSVFile("Edge", filepath.Join(dir, "Edge.csv")); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "graph.schema"), []byte(graphSchemaText), 0o644)
}

const graphSchemaText = `# Node-DP graph schema (Example 3.1)
Node(ID*)
Edge(src->Node, dst->Node)
`

const tpchSchemaText = `# TPC-H schema (Figure 4); dates are integer day offsets
Region(RK*, rname)
Nation(NK*, RK->Region, nname)
Supplier(SK*, NK->Nation, sacctbal)
Customer(CK*, NK->Nation, mktsegment, cacctbal)
Part(PKEY*, brand, ptype, psize, retail)
PartSupp(PKEY->Part, SK->Supplier, availqty, supplycost)
Orders(OK*, CK->Customer, odate, opriority)
Lineitem(OK->Orders, PKEY->Part, SK->Supplier, qty, price, discount, sdate, cdate, rdate, shipmode, returnflag)
`

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
