package r2t

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"r2t/internal/exec"
	"r2t/internal/plan"
	"r2t/internal/schema"
	"r2t/internal/sql"
)

// Explanation describes how a query would be evaluated: the completed join
// (Section 3.2), which atoms identify protected individuals, and the
// residual predicates. It reveals nothing about the data — only the query
// and schema — so it is safe to show freely.
type Explanation struct {
	Query       string   // normalized SQL
	Aggregate   string   // COUNT(*), COUNT(DISTINCT), SUM
	Atoms       []string // one line per atom of the completed join
	Filters     []string // residual predicates evaluated on join results
	Projection  bool     // SPJA (duplicate-removing projection) or SJA
	PrivateAtom []string // atoms whose PK identifies a protected individual
	SelfJoin    bool     // some relation appears more than once
}

// String renders the explanation as an indented report.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:      %s\n", e.Query)
	fmt.Fprintf(&b, "aggregate:  %s", e.Aggregate)
	if e.Projection {
		b.WriteString(" (SPJA: projection removes duplicates; τ* = IS_Q)")
	}
	b.WriteString("\ncompleted join:\n")
	for _, a := range e.Atoms {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	if len(e.Filters) > 0 {
		b.WriteString("filters:\n")
		for _, f := range e.Filters {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	fmt.Fprintf(&b, "protected individuals identified by: %s\n", strings.Join(e.PrivateAtom, ", "))
	if e.SelfJoin {
		b.WriteString("self-join present: naive truncation would violate DP (Example 1.2); the LP operator is required\n")
	}
	return b.String()
}

// SensitivityProfile summarizes the per-individual sensitivities of one
// query on the current instance — the distribution of S_Q(I, t_P). It is
// NON-PRIVATE (computed directly from the data) and intended for offline
// analysis by the data owner, e.g. to sanity-check a GS_Q promise against
// representative data before any release.
type SensitivityProfile struct {
	Individuals int     // referenced primary-private tuples
	JoinResults int     // |J(I)|
	TrueAnswer  float64 // Q(I)
	Max         float64 // DS_Q (SJA) / IS_Q (SPJA)
	Mean        float64
	Median      float64
	P95         float64
}

// Sensitivities evaluates the query and returns the NON-PRIVATE sensitivity
// profile. Do not release any of it; use it to choose public parameters
// from representative (non-sensitive) data.
func (db *DB) Sensitivities(sqlText string, primary []string) (*SensitivityProfile, error) {
	parsed, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(parsed, db.schema, schema.PrivateSpec{Primary: primary})
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(p, db.instance)
	if err != nil {
		return nil, err
	}
	var sens []float64
	for _, s := range res.SensitivityByTuple() {
		sens = append(sens, s)
	}
	sort.Float64s(sens)
	prof := &SensitivityProfile{
		Individuals: len(sens),
		JoinResults: len(res.Rows),
		TrueAnswer:  res.TrueAnswer(),
		Max:         res.MaxTupleSensitivity(),
	}
	if len(sens) > 0 {
		total := 0.0
		for _, s := range sens {
			total += s
		}
		prof.Mean = total / float64(len(sens))
		prof.Median = medianOf(sens)
		prof.P95 = percentileOf(sens, 0.95)
	}
	return prof, nil
}

// medianOf returns the median of a sorted sample: the middle element for odd
// n, the mean of the two middle elements for even n. (Indexing sens[n/2]
// would upper-bias every even-sized sample.)
func medianOf(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// percentileOf returns the nearest-rank p-th percentile of a sorted sample:
// the smallest element with at least ⌈p·n⌉ of the sample at or below it,
// i.e. index ⌈p·n⌉−1. (The old int(p*n) indexing over-shot by one whenever
// p·n was integral — P95 of 100 samples read sorted[95], the 96th value,
// instead of sorted[94]; of 20 samples, sorted[19], the maximum, instead of
// sorted[18].)
func percentileOf(sorted []float64, p float64) float64 {
	n := len(sorted)
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// ExplainAnalyze renders an evaluated Answer's stage profile EXPLAIN
// ANALYZE-style: end-to-end wall time, the per-stage breakdown with work
// counters, and the join/race shape of the run. The answer must come from a
// query with Options.Profile set; without a profile only the summary lines
// render. Everything here except Estimate is a NON-PRIVATE diagnostic — show
// it to the data curator, never alongside a release.
func ExplainAnalyze(ans *Answer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration:      %v (end to end)\n", ans.Duration)
	if ans.Mechanism != "" {
		fmt.Fprintf(&b, "mechanism:     %s", ans.Mechanism)
		if ans.MechReason != "" {
			fmt.Fprintf(&b, " (%s)", ans.MechReason)
		}
		if ans.MechBound > 0 && !math.IsInf(ans.MechBound, 1) {
			fmt.Fprintf(&b, "; a-priori error bound %.4g", ans.MechBound)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "join results:  %d rows, %d protected individuals\n", ans.NumResults, ans.Individuals)
	fmt.Fprintf(&b, "races:         %d", len(ans.Races))
	if ans.WinnerTauNeg != 0 {
		fmt.Fprintf(&b, " (signed split; winners τ⁺=%g τ⁻=%g)", ans.WinnerTau, ans.WinnerTauNeg)
	} else if ans.WinnerTau != 0 {
		fmt.Fprintf(&b, " (winner τ=%g)", ans.WinnerTau)
	}
	b.WriteString("\n")
	if ans.Profile == nil {
		b.WriteString("no stage profile: run the query with Options.Profile\n")
		return b.String()
	}
	b.WriteString(ans.Profile.String())
	if gap := ans.Duration - ans.Profile.StageTotal(); gap > 0 {
		fmt.Fprintf(&b, "unattributed:  %v (work between stages)\n", gap)
	}
	return b.String()
}

// Explain lowers a query without touching any data and reports the completed
// join structure the provenance will be computed over.
func (db *DB) Explain(sqlText string, primary []string) (*Explanation, error) {
	parsed, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(parsed, db.schema, schema.PrivateSpec{Primary: primary})
	if err != nil {
		return nil, err
	}

	e := &Explanation{
		Query:      parsed.String(),
		Aggregate:  parsed.Agg.String(),
		Projection: len(p.ProjVars) > 0,
		SelfJoin:   p.SelfJoin(),
	}
	for i, a := range p.Atoms {
		vars := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			vars[j] = fmt.Sprintf("$%d", v)
		}
		origin := ""
		if a.Completed {
			origin = "   [added by query completion]"
		}
		e.Atoms = append(e.Atoms, fmt.Sprintf("%s AS %s(%s)%s", a.Rel.Name, a.Alias, strings.Join(vars, ", "), origin))
		if p.PrivPK[i] >= 0 {
			e.PrivateAtom = append(e.PrivateAtom, fmt.Sprintf("%s.$%d", a.Alias, p.PrivPK[i]))
		}
	}
	for _, f := range p.Filters {
		e.Filters = append(e.Filters, sql.ExprString(f.Expr))
	}
	return e, nil
}
