package r2t

import (
	"strings"
	"testing"
)

func TestExplainCompletion(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}}, 2)
	e, err := db.Explain(
		"SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src",
		[]string{"Node"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !e.SelfJoin {
		t.Error("self-join not detected")
	}
	if e.Projection {
		t.Error("no projection here")
	}
	completed := 0
	for _, a := range e.Atoms {
		if strings.Contains(a, "query completion") {
			completed++
		}
	}
	if completed != 3 {
		t.Errorf("completed atoms = %d, want 3 Node atoms", completed)
	}
	if len(e.PrivateAtom) != 3 {
		t.Errorf("private atoms = %v", e.PrivateAtom)
	}
	s := e.String()
	for _, frag := range []string{"COUNT(*)", "Node", "self-join present"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered explanation missing %q:\n%s", frag, s)
		}
	}
}

func TestExplainProjection(t *testing.T) {
	s := MustSchema(
		&Relation{Name: "Customer", Attrs: []string{"CK"}, PK: "CK"},
		&Relation{Name: "Orders", Attrs: []string{"OK", "CK", "status"}, PK: "OK",
			FKs: []FK{{Attr: "CK", Ref: "Customer"}}},
	)
	db := NewDB(s)
	e, err := db.Explain("SELECT COUNT(DISTINCT o.status) FROM Orders o", []string{"Customer"})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Projection {
		t.Error("projection not detected")
	}
	if e.SelfJoin {
		t.Error("no self-join here")
	}
	if !strings.Contains(e.String(), "IS_Q") {
		t.Error("explanation should mention the SPJA optimality target")
	}
}

func TestExplainErrors(t *testing.T) {
	db := graphDB(t, nil, 1)
	if _, err := db.Explain("garbage", []string{"Node"}); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := db.Explain("SELECT COUNT(*) FROM Edge", []string{"Missing"}); err == nil {
		t.Error("bad private spec should fail")
	}
}

// TestMedianOf pins the nearest-rank median: middle element for odd n, mean
// of the two middle elements for even n. The sample 1..n makes the expected
// value easy to state in closed form: (n+1)/2.
func TestMedianOf(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 19, 20, 100} {
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = float64(i + 1)
		}
		want := float64(n+1) / 2
		if got := medianOf(sorted); got != want {
			t.Errorf("medianOf(1..%d) = %g, want %g", n, got, want)
		}
	}
}

// TestPercentileOf pins nearest-rank percentiles on the sample 1..n, where
// the p-th percentile is exactly ⌈p·n⌉.
func TestPercentileOf(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want float64
	}{
		{1, 0.95, 1},
		{2, 0.95, 2},
		{3, 0.95, 3},
		{4, 0.95, 4},
		{5, 0.95, 5},
		{19, 0.95, 19}, // ⌈18.05⌉ = 19th value
		{20, 0.95, 19}, // ⌈19⌉ = 19th value — int(p·n) used to read the max
		{100, 0.95, 95},
		{100, 0.5, 50},
		{4, 0.5, 2},
		{5, 0.25, 2},
	}
	for _, c := range cases {
		sorted := make([]float64, c.n)
		for i := range sorted {
			sorted[i] = float64(i + 1)
		}
		if got := percentileOf(sorted, c.p); got != c.want {
			t.Errorf("percentileOf(1..%d, %g) = %g, want %g", c.n, c.p, got, c.want)
		}
	}
}

func TestSensitivities(t *testing.T) {
	// A 10-star plus an isolated edge.
	var edges [][2]int64
	for i := int64(1); i <= 10; i++ {
		edges = append(edges, [2]int64{0, i})
	}
	edges = append(edges, [2]int64{11, 12})
	db := graphDB(t, edges, 13)
	prof, err := db.Sensitivities(`SELECT COUNT(*) FROM Edge WHERE src < dst`, []string{"Node"})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Max != 10 {
		t.Errorf("max = %g, want 10 (the hub)", prof.Max)
	}
	if prof.Individuals != 13 || prof.JoinResults != 11 || prof.TrueAnswer != 11 {
		t.Errorf("profile: %+v", prof)
	}
	if prof.Median != 1 {
		t.Errorf("median = %g, want 1 (leaves dominate)", prof.Median)
	}
	if prof.Mean <= 1 || prof.Mean >= 3 {
		t.Errorf("mean = %g, want (1,3)", prof.Mean)
	}
	if _, err := db.Sensitivities("garbage", []string{"Node"}); err == nil {
		t.Error("bad SQL should fail")
	}
}
