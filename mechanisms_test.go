package r2t

import (
	"math"
	"strings"
	"testing"

	"r2t/internal/dp"
	"r2t/internal/obs"
)

// shopDB builds the single-FK SJA shape: every order belongs to exactly one
// customer, so the truncation LP's capacity rows partition the variables and
// the closed-form partition truncator applies.
func shopDB(t *testing.T, orders [][2]int64, customers int64) *DB {
	t.Helper()
	s := MustSchema(
		&Relation{Name: "Customer", Attrs: []string{"ID"}, PK: "ID"},
		&Relation{Name: "Orders", Attrs: []string{"cid", "price"},
			FKs: []FK{{Attr: "cid", Ref: "Customer"}}},
	)
	db := NewDB(s)
	for i := int64(0); i < customers; i++ {
		if err := db.Insert("Customer", Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range orders {
		if err := db.Insert("Orders", Int(o[0]), Int(o[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	return db
}

func skewedOrders(customers, per int64) [][2]int64 {
	var orders [][2]int64
	for c := int64(0); c < customers; c++ {
		n := per
		if c == 0 {
			n = per * 8 // one heavy hitter, so truncation actually bites
		}
		for i := int64(0); i < n; i++ {
			orders = append(orders, [2]int64{c, 1 + i%5})
		}
	}
	return orders
}

// TestPartitionFastPathBitIdentical is the tentpole's contract: the released
// answer with the closed-form partition truncator is bit-for-bit the answer
// the simplex pipeline releases under the same seed — for COUNT (integer-exact
// regime) and SUM (integral ψ), with and without EarlyStop.
func TestPartitionFastPathBitIdentical(t *testing.T) {
	db := shopDB(t, skewedOrders(30, 4), 30)
	queries := []string{
		`SELECT COUNT(*) FROM Orders`,
		`SELECT SUM(Orders.price) FROM Orders`,
	}
	for _, q := range queries {
		for _, early := range []bool{false, true} {
			for seed := int64(1); seed <= 5; seed++ {
				base := Options{
					Epsilon: 0.8, GSQ: 512, Primary: []string{"Customer"},
					EarlyStop: early, Profile: true,
				}
				fast := base
				fast.Noise = NewNoiseSource(seed)
				slow := base
				slow.Noise = NewNoiseSource(seed)
				slow.DisableFastPath = true

				af, err := db.Query(q, fast)
				if err != nil {
					t.Fatal(err)
				}
				as, err := db.Query(q, slow)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(af.Estimate) != math.Float64bits(as.Estimate) {
					t.Fatalf("%s early=%v seed=%d: fast %v (%x) != simplex %v (%x)",
						q, early, seed, af.Estimate, math.Float64bits(af.Estimate),
						as.Estimate, math.Float64bits(as.Estimate))
				}
				if af.WinnerTau != as.WinnerTau || af.TauStar != as.TauStar || af.TrueAnswer != as.TrueAnswer {
					t.Fatalf("%s early=%v seed=%d: diagnostics diverge: %+v vs %+v", q, early, seed, af, as)
				}
				// The fast run really took the fast path, and the slow run didn't.
				if af.Profile.Counters[obs.CtrPartitionFastPath.String()] != 1 {
					t.Fatalf("%s: fast run did not use the partition path: %v", q, af.Profile.Counters)
				}
				if as.Profile.Counters[obs.CtrPartitionFastPath.String()] != 0 {
					t.Fatalf("%s: DisableFastPath run used the partition path", q)
				}
			}
		}
	}
}

// TestPartitionFastPathNotUsedOnSharedProvenance: the edge-count query's
// provenance names two nodes per edge, so the LP must stay in charge.
func TestPartitionFastPathNotUsedOnSharedProvenance(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}, {1, 2}, {0, 2}}, 3)
	ans, err := db.Query(edgeCount, Options{
		Epsilon: 1, GSQ: 16, Primary: []string{"Node"}, Noise: NewNoiseSource(3), Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Profile.Counters[obs.CtrPartitionFastPath.String()] != 0 {
		t.Fatal("shared provenance must not take the partition path")
	}
}

func TestMechanismLaplace(t *testing.T) {
	db := shopDB(t, skewedOrders(20, 3), 20)
	ans, err := db.Query(`SELECT COUNT(*) FROM Orders`, Options{
		Epsilon: 1, GSQ: 128, Primary: []string{"Customer"},
		Mechanism: "laplace", Noise: dp.ZeroNoise{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "laplace" {
		t.Fatalf("Mechanism = %q", ans.Mechanism)
	}
	// Laplace is unbiased: under zero noise the release IS the true answer.
	if ans.Estimate != ans.TrueAnswer {
		t.Fatalf("laplace zero-noise estimate %g != truth %g", ans.Estimate, ans.TrueAnswer)
	}
}

func TestMechanismFixedTau(t *testing.T) {
	db := shopDB(t, skewedOrders(20, 3), 20)
	// τ=2 truncates the heavy hitter: under zero noise the release is
	// Σ_j min(τ, S_j), strictly below the truth here.
	ans, err := db.Query(`SELECT COUNT(*) FROM Orders`, Options{
		Epsilon: 1, GSQ: 128, Primary: []string{"Customer"},
		Mechanism: "fixed-tau", FixedTau: 2, Noise: dp.ZeroNoise{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "fixed-tau" {
		t.Fatalf("Mechanism = %q", ans.Mechanism)
	}
	// Every customer has S_j ≥ 3, so all 20 are capped at τ=2.
	if ans.Estimate != 2*20 {
		t.Fatalf("fixed-tau zero-noise estimate %g, want %g", ans.Estimate, float64(2*20))
	}
	if ans.Estimate >= ans.TrueAnswer {
		t.Fatalf("τ=2 should truncate: estimate %g, truth %g", ans.Estimate, ans.TrueAnswer)
	}
}

func TestMechanismLS(t *testing.T) {
	db := shopDB(t, skewedOrders(20, 3), 20)
	ans, err := db.Query(`SELECT COUNT(*) FROM Orders`, Options{
		Epsilon: 1, GSQ: 128, Primary: []string{"Customer"},
		Mechanism: "ls", Noise: NewNoiseSource(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "ls" {
		t.Fatalf("Mechanism = %q", ans.Mechanism)
	}
	if math.IsNaN(ans.Estimate) || math.IsInf(ans.Estimate, 0) {
		t.Fatalf("ls estimate %g", ans.Estimate)
	}
	// LS on a self-join is structurally rejected before any evaluation.
	gdb := graphDB(t, [][2]int64{{0, 1}}, 2)
	if _, err := gdb.Query(edgeCount, Options{
		Epsilon: 1, GSQ: 16, Primary: []string{"Node"}, Mechanism: "ls",
	}); err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("ls on self-join: err = %v", err)
	}
}

func TestMechanismAuto(t *testing.T) {
	db := shopDB(t, skewedOrders(20, 3), 20)
	// Loose target: laplace qualifies and is cheapest.
	ans, err := db.Query(`SELECT COUNT(*) FROM Orders`, Options{
		Epsilon: 1, GSQ: 128, Primary: []string{"Customer"},
		Mechanism: "auto", ErrorTarget: 1e6, Noise: NewNoiseSource(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "laplace" {
		t.Fatalf("auto loose target picked %q (%s)", ans.Mechanism, ans.MechReason)
	}
	if ans.MechBound <= 0 || ans.MechBound > 1e6 {
		t.Fatalf("MechBound = %g", ans.MechBound)
	}
	// No target: the instance-optimal default.
	ans, err = db.Query(`SELECT COUNT(*) FROM Orders`, Options{
		Epsilon: 1, GSQ: 128, Primary: []string{"Customer"},
		Mechanism: "auto", Noise: NewNoiseSource(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "r2t" {
		t.Fatalf("auto without target picked %q", ans.Mechanism)
	}
}

// TestChooserDataIndependence is the §15 property end to end: neighboring
// databases (one individual's rows removed) select the SAME mechanism under
// auto — the decision depends on the query, never the instance.
func TestChooserDataIndependence(t *testing.T) {
	orders := skewedOrders(25, 3)
	var without [][2]int64
	for _, o := range orders {
		if o[0] != 0 { // drop the heavy hitter's entire order set
			without = append(without, o)
		}
	}
	dbA := shopDB(t, orders, 25)
	dbB := shopDB(t, without, 25)
	for _, target := range []float64{0, 100, 1e6} {
		opt := Options{
			Epsilon: 1, GSQ: 256, Primary: []string{"Customer"},
			Mechanism: "auto", ErrorTarget: target, Noise: NewNoiseSource(1),
		}
		a, err := dbA.Query(`SELECT COUNT(*) FROM Orders`, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Noise = NewNoiseSource(1)
		b, err := dbB.Query(`SELECT COUNT(*) FROM Orders`, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Mechanism != b.Mechanism || a.MechReason != b.MechReason || a.MechBound != b.MechBound {
			t.Fatalf("target %g: neighbors chose differently: %q(%q) vs %q(%q)",
				target, a.Mechanism, a.MechReason, b.Mechanism, b.MechReason)
		}
	}
}

func TestMechanismOptionValidation(t *testing.T) {
	db := shopDB(t, [][2]int64{{0, 1}}, 1)
	base := Options{Epsilon: 1, GSQ: 16, Primary: []string{"Customer"}}
	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"unknown mechanism", func(o *Options) { o.Mechanism = "bogus" }},
		{"naive with laplace", func(o *Options) { o.Naive = true; o.Mechanism = "laplace" }},
		{"negative error target", func(o *Options) { o.ErrorTarget = -1 }},
		{"error target without auto", func(o *Options) { o.ErrorTarget = 10 }},
		{"fixed tau without fixed-tau", func(o *Options) { o.FixedTau = 4 }},
		{"fixed tau above GSQ", func(o *Options) { o.Mechanism = "fixed-tau"; o.FixedTau = 32 }},
		{"negative fixed tau", func(o *Options) { o.Mechanism = "fixed-tau"; o.FixedTau = -2 }},
	}
	for _, tc := range cases {
		opt := base
		tc.mod(&opt)
		if _, err := db.Query(`SELECT COUNT(*) FROM Orders`, opt); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
	}
}

// TestBudgetNotChargedForInapplicableMechanism: the chooser runs before the
// budget spends, so a structurally invalid request costs zero ε.
func TestBudgetNotChargedForInapplicableMechanism(t *testing.T) {
	db := graphDB(t, [][2]int64{{0, 1}}, 2)
	budget := MustBudget(1)
	_, err := db.QueryWithBudget(edgeCount, Options{
		Epsilon: 0.5, GSQ: 16, Primary: []string{"Node"}, Mechanism: "ls",
	}, budget)
	if err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("err = %v", err)
	}
	if budget.Spent() != 0 {
		t.Fatalf("inapplicable mechanism charged ε: spent %g", budget.Spent())
	}
	// A valid request afterwards still works and charges.
	if _, err := db.QueryWithBudget(edgeCount, Options{
		Epsilon: 0.5, GSQ: 16, Primary: []string{"Node"}, Noise: NewNoiseSource(1),
	}, budget); err != nil {
		t.Fatal(err)
	}
	if budget.Spent() != 0.5 {
		t.Fatalf("spent %g, want 0.5", budget.Spent())
	}
}
