package r2t

import (
	"math"
	"testing"
)

func regionDB(t *testing.T) *DB {
	t.Helper()
	s := MustSchema(
		&Relation{Name: "Customer", Attrs: []string{"CK", "region"}, PK: "CK"},
		&Relation{Name: "Orders", Attrs: []string{"OK", "CK"}, PK: "OK",
			FKs: []FK{{Attr: "CK", Ref: "Customer"}}},
	)
	db := NewDB(s)
	ok := int64(0)
	regions := []string{"EU", "US", "APAC"}
	perRegion := map[string]int64{"EU": 2, "US": 5, "APAC": 1}
	for c := int64(0); c < 90; c++ {
		region := regions[c%3]
		if err := db.Insert("Customer", Int(c), Str(region)); err != nil {
			t.Fatal(err)
		}
		for o := int64(0); o < perRegion[region]; o++ {
			if err := db.Insert("Orders", Int(ok), Int(c)); err != nil {
				t.Fatal(err)
			}
			ok++
		}
	}
	return db
}

func TestQueryGroupBy(t *testing.T) {
	db := regionDB(t)
	groups := []Value{Str("EU"), Str("US"), Str("APAC")}
	// True per-group counts: 30 customers × {2,5,1} orders.
	want := map[string]float64{"EU": 60, "US": 150, "APAC": 30}

	out, err := db.QueryGroupBy(
		`SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.CK`,
		"c.region", groups,
		Options{Epsilon: 6, GSQ: 64, Primary: []string{"Customer"}, Noise: NewNoiseSource(5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("groups = %d", len(out))
	}
	for _, g := range out {
		truth := want[g.Group.S]
		if g.Answer.TrueAnswer != truth {
			t.Errorf("group %v: true answer %g, want %g", g.Group, g.Answer.TrueAnswer, truth)
		}
		// The Theorem 5.1 upper side fails with probability β/2 per group, so
		// allow modest overshoot; just require a usable estimate.
		if math.Abs(g.Answer.Estimate-truth) > truth {
			t.Errorf("group %v: estimate %g unusably far from %g", g.Group, g.Answer.Estimate, truth)
		}
	}
}

func TestQueryGroupByUnqualifiedColumn(t *testing.T) {
	db := regionDB(t)
	out, err := db.QueryGroupBy(
		`SELECT COUNT(*) FROM Orders`,
		"region", []Value{Str("EU")},
		Options{Epsilon: 4, GSQ: 64, Primary: []string{"Customer"}, Noise: NewNoiseSource(9)},
	)
	// "region" is not a column of Orders: resolution must fail cleanly.
	if err == nil {
		t.Fatalf("expected unknown column error, got %+v", out)
	}
}

func TestQueryGroupByValidation(t *testing.T) {
	db := regionDB(t)
	opt := Options{Epsilon: 1, GSQ: 64, Primary: []string{"Customer"}}
	if _, err := db.QueryGroupBy("SELECT COUNT(*) FROM Orders", "c.region", nil, opt); err == nil {
		t.Error("empty group list should fail")
	}
	if _, err := db.QueryGroupBy("garbage", "c.region", []Value{Str("EU")}, opt); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := db.QueryGroupBy("SELECT COUNT(*) FROM Orders", "", []Value{Str("EU")}, opt); err == nil {
		t.Error("empty column should fail")
	}
	if _, err := db.QueryGroupBy("SELECT COUNT(*) FROM Orders", ".x", []Value{Str("EU")}, opt); err == nil {
		t.Error("malformed column should fail")
	}
}

func TestQueryGroupBySplitsBudget(t *testing.T) {
	// With k groups each sub-query gets ε/k: the per-race noise scale in the
	// diagnostics must reflect that. Compare single-group vs three-group runs
	// of the same query: more groups → bigger error on the same group, on
	// average across seeds.
	db := regionDB(t)
	query := `SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.CK`
	avgErr := func(groups []Value) float64 {
		var total float64
		const runs = 20
		for seed := int64(0); seed < runs; seed++ {
			out, err := db.QueryGroupBy(query, "c.region", groups,
				Options{Epsilon: 2, GSQ: 256, Primary: []string{"Customer"}, Noise: NewNoiseSource(seed)})
			if err != nil {
				t.Fatal(err)
			}
			g := out[0]
			total += math.Abs(g.Answer.Estimate - g.Answer.TrueAnswer)
		}
		return total / runs
	}
	one := avgErr([]Value{Str("US")})
	three := avgErr([]Value{Str("US"), Str("EU"), Str("APAC")})
	if three < one {
		t.Errorf("splitting the budget should not reduce error: 1 group %g vs 3 groups %g", one, three)
	}
}
