package r2t

import (
	"testing"
)

// TestEdgeDPVersusNodeDP exercises the Section 3.2 observation that the
// FK-aware DP policy specializes to both edge-DP and node-DP for graphs:
// designating Edge primary private (with its own key) protects single edges,
// while designating Node protects a node together with all incident edges.
func TestEdgeDPVersusNodeDP(t *testing.T) {
	s := MustSchema(
		&Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&Relation{Name: "Edge", Attrs: []string{"EID", "src", "dst"}, PK: "EID",
			FKs: []FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := NewDB(s)
	// A 10-star: node 0 in the middle.
	for i := int64(0); i <= 10; i++ {
		if err := db.Insert("Node", Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 10; i++ {
		if err := db.Insert("Edge", Int(i), Int(0), Int(i)); err != nil {
			t.Fatal(err)
		}
	}

	const q = `SELECT COUNT(*) FROM Edge`

	// Node-DP: the hub is in all 10 edges → τ* = 10.
	nodeAns, err := db.Query(q, Options{Epsilon: 1, GSQ: 64, Primary: []string{"Node"}, Noise: NewNoiseSource(1)})
	if err != nil {
		t.Fatal(err)
	}
	if nodeAns.TauStar != 10 {
		t.Errorf("node-DP τ* = %g, want 10 (the hub)", nodeAns.TauStar)
	}

	// Edge-DP: every edge is its own individual → τ* = 1 and far less noise
	// is needed for the same ε.
	edgeAns, err := db.Query(q, Options{Epsilon: 1, GSQ: 64, Primary: []string{"Edge"}, Noise: NewNoiseSource(1)})
	if err != nil {
		t.Fatal(err)
	}
	if edgeAns.TauStar != 1 {
		t.Errorf("edge-DP τ* = %g, want 1", edgeAns.TauStar)
	}
	if edgeAns.Individuals != 10 || nodeAns.Individuals != 11 {
		t.Errorf("individuals: edge-DP %d (want 10 edges), node-DP %d (want 11 nodes)",
			edgeAns.Individuals, nodeAns.Individuals)
	}
	// Both estimates are usable here, but edge-DP's error bound is 10× tighter.
	nb := ErrorBound(Options{Epsilon: 1, GSQ: 64, Beta: 0.1}, nodeAns.TauStar)
	eb := ErrorBound(Options{Epsilon: 1, GSQ: 64, Beta: 0.1}, edgeAns.TauStar)
	if eb*9 > nb {
		t.Errorf("edge-DP bound %g should be ~10x tighter than node-DP %g", eb, nb)
	}
}

// TestNeighborSemantics verifies the policies' neighbor definitions at the
// storage level: removing a node cascades to its edges, removing an edge
// touches nothing else.
func TestNeighborSemantics(t *testing.T) {
	s := MustSchema(
		&Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&Relation{Name: "Edge", Attrs: []string{"EID", "src", "dst"}, PK: "EID",
			FKs: []FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := NewDB(s)
	for i := int64(0); i < 4; i++ {
		if err := db.Insert("Node", Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][3]int64{{1, 0, 1}, {2, 1, 2}, {3, 2, 3}}
	for _, e := range edges {
		if err := db.Insert("Edge", Int(e[0]), Int(e[1]), Int(e[2])); err != nil {
			t.Fatal(err)
		}
	}

	// Node-DP neighbor: drop node 1 → edges (0,1) and (1,2) must go too.
	nodeNb, err := db.Instance().RemoveIndividual("Node", Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if nodeNb.Table("Edge").Len() != 1 {
		t.Errorf("node-DP neighbor kept %d edges, want 1", nodeNb.Table("Edge").Len())
	}
	if nodeNb.Table("Node").Len() != 3 {
		t.Errorf("node-DP neighbor kept %d nodes, want 3", nodeNb.Table("Node").Len())
	}

	// Edge-DP neighbor: drop edge 2 → nodes untouched.
	edgeNb, err := db.Instance().RemoveIndividual("Edge", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if edgeNb.Table("Edge").Len() != 2 || edgeNb.Table("Node").Len() != 4 {
		t.Errorf("edge-DP neighbor: %d edges, %d nodes", edgeNb.Table("Edge").Len(), edgeNb.Table("Node").Len())
	}
}
