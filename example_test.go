package r2t_test

import (
	"fmt"

	"r2t"
)

// ExampleDB_Query answers a node-DP edge-counting query. A fixed noise seed
// keeps the output stable; real deployments omit Noise for fresh randomness.
func ExampleDB_Query() {
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&r2t.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []r2t.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := r2t.NewDB(s)
	// 100 disjoint triangles: every node participates in exactly 2 edges.
	for i := int64(0); i < 300; i++ {
		if err := db.Insert("Node", r2t.Int(i)); err != nil {
			panic(err)
		}
	}
	addEdge := func(u, v int64) {
		db.Insert("Edge", r2t.Int(u), r2t.Int(v))
		db.Insert("Edge", r2t.Int(v), r2t.Int(u))
	}
	for i := int64(0); i < 100; i++ {
		a, b, c := 3*i, 3*i+1, 3*i+2
		addEdge(a, b)
		addEdge(b, c)
		addEdge(a, c)
	}

	ans, err := db.Query(`SELECT COUNT(*) FROM Edge WHERE src < dst`, r2t.Options{
		Epsilon: 1,
		GSQ:     256,
		Primary: []string{"Node"},
		Noise:   r2t.NewNoiseSource(42),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("true answer (non-private): %.0f\n", ans.TrueAnswer)
	fmt.Printf("τ* = DS_Q(I): %.0f\n", ans.TauStar)
	fmt.Printf("released answer is ε-DP and ≤ %0.f\n", ans.TrueAnswer)
	// Output:
	// true answer (non-private): 300
	// τ* = DS_Q(I): 2
	// released answer is ε-DP and ≤ 300
}

// ExampleDB_QueryGroupBy answers a per-group count by splitting the budget
// across a public group domain (the Section 11 future-work strategy).
func ExampleDB_QueryGroupBy() {
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Customer", Attrs: []string{"CK", "region"}, PK: "CK"},
		&r2t.Relation{Name: "Orders", Attrs: []string{"OK", "CK"}, PK: "OK",
			FKs: []r2t.FK{{Attr: "CK", Ref: "Customer"}}},
	)
	db := r2t.NewDB(s)
	ok := int64(0)
	for c := int64(0); c < 60; c++ {
		region := []string{"EU", "US"}[c%2]
		db.Insert("Customer", r2t.Int(c), r2t.Str(region))
		for o := int64(0); o < 3; o++ {
			db.Insert("Orders", r2t.Int(ok), r2t.Int(c))
			ok++
		}
	}
	out, err := db.QueryGroupBy(
		`SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.CK`,
		"c.region",
		[]r2t.Value{r2t.Str("EU"), r2t.Str("US")},
		r2t.Options{Epsilon: 8, GSQ: 16, Primary: []string{"Customer"}, Noise: r2t.NewNoiseSource(7)},
	)
	if err != nil {
		panic(err)
	}
	for _, g := range out {
		fmt.Printf("%s: true %.0f (private estimate within noise)\n", g.Group.S, g.Answer.TrueAnswer)
	}
	// Output:
	// EU: true 90 (private estimate within noise)
	// US: true 90 (private estimate within noise)
}

// ExampleDB_Explain inspects how a self-join query will be completed and
// which atoms anchor the privacy provenance — without touching any data.
func ExampleDB_Explain() {
	s := r2t.MustSchema(
		&r2t.Relation{Name: "Node", Attrs: []string{"ID"}, PK: "ID"},
		&r2t.Relation{Name: "Edge", Attrs: []string{"src", "dst"},
			FKs: []r2t.FK{{Attr: "src", Ref: "Node"}, {Attr: "dst", Ref: "Node"}}},
	)
	db := r2t.NewDB(s)
	e, err := db.Explain(
		`SELECT COUNT(*) FROM Edge e1, Edge e2 WHERE e1.dst = e2.src`,
		[]string{"Node"},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("self-join:", e.SelfJoin)
	fmt.Println("atoms in completed join:", len(e.Atoms))
	// Output:
	// self-join: true
	// atoms in completed join: 5
}
