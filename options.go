package r2t

import (
	"fmt"

	"r2t/internal/mech"
)

// Options configures one private query evaluation.
type Options struct {
	// Epsilon is the privacy budget ε (> 0). Required.
	Epsilon float64
	// GSQ is the assumed bound on the query's global sensitivity — the most
	// any one individual may contribute (Section 4). Required, ≥ 2. R2T's
	// error grows only logarithmically in GSQ, so be conservative.
	GSQ float64
	// Primary names the primary private relations (each must have a primary
	// key). Required.
	Primary []string
	// Beta is the failure probability of the utility guarantee (default 0.1).
	// It does not affect privacy.
	Beta float64
	// Noise overrides the noise source (default: a fresh source seeded from
	// the system CSPRNG — see dp.CryptoSeed).
	Noise NoiseSource
	// EarlyStop enables the dual-bound race pruning of Algorithm 1.
	EarlyStop bool
	// Naive forces naive truncation instead of the LP operator. Only valid
	// for self-join-free queries without projection; Query fails otherwise.
	// The LP operator (default) is valid for all SPJA queries.
	Naive bool
	// Workers solves races concurrently (default 1; negative = GOMAXPROCS).
	// The released estimate is unchanged; only wall time.
	Workers int
	// ExecWorkers bounds the join executor's probe worker pool (default 0 =
	// GOMAXPROCS; 1 runs fully serial). Join results — row order included —
	// and therefore every released answer are bit-identical for every
	// setting; only wall time changes.
	ExecWorkers int
	// AllowNegativeSum lifts the paper's ψ ≥ 0 requirement for SUM queries:
	// the query is split into Q⁺ − Q⁻ (each with non-negative weights), each
	// half runs R2T with ε/2, and the difference is released. GSQ then bounds
	// an individual's contribution to *either* half.
	AllowNegativeSum bool
	// Degrade skips races whose LP solve fails (error, iteration-limit
	// exhaustion, or a contained panic) instead of failing the query: the
	// remaining races still race and Answer.Degraded reports the skip.
	//
	// Privacy caveat: the max over fewer races is post-processing of the
	// same (ε/L)-DP race outputs only when the set of skipped races does not
	// depend on the data. Organic solver failures generally DO depend on the
	// data (iteration counts are a function of the LP instance), so at a
	// privacy boundary a degraded estimate — or any visible trace of which
	// races survived — is not covered by the ε accounting. Use Degrade for
	// experiments and curator-side diagnostics only; the r2td server leaves
	// it off and fails such runs uniformly (DESIGN.md §9d). The default
	// (off) fails the whole query on any race failure.
	Degrade bool
	// DisableJoinShare opts this evaluation out of the DB's join-core cache:
	// the probe pass runs privately instead of being served from (or
	// published to) the shared cache. Sharing never changes a released
	// answer — the equivalence gates enforce bit-identity — so this knob
	// exists for those gates and for isolating perf measurements, not for
	// privacy (the cached core never leaves the engine, DESIGN.md §12).
	DisableJoinShare bool
	// Profile collects a per-stage breakdown of where the evaluation spent
	// its time (parse, plan, exec, truncation build, LP solving, noise) plus
	// work counters, surfaced as Answer.Profile. Profiling is pure
	// observation — the released estimate is bit-identical with it on or off
	// — but the profile itself is a data-dependent, NON-PRIVATE diagnostic:
	// treat it like Answer.TrueAnswer and never release it (DESIGN.md §11).
	Profile bool
	// Mechanism selects the release mechanism: "" or "r2t" (the default,
	// instance-optimal for every SPJA query), "laplace" (textbook Laplace at
	// GS_Q — unbiased, cheapest, worst-case noise), "fixed-tau" (LP
	// truncation at one fixed τ [22]), "ls" (the local-sensitivity SVT
	// mechanism [37]; self-join-free, projection-free queries only), or
	// "auto" (a data-independent chooser picks the cheapest backend whose
	// a-priori error bound meets ErrorTarget, falling back to r2t — see
	// DESIGN.md §15). An explicitly named mechanism that does not apply to
	// the query's structure fails the query before any evaluation (and, for
	// budget-charging callers, before any ε charge).
	Mechanism string
	// ErrorTarget (Mechanism "auto" only) is the largest acceptable a-priori
	// (1−β)-probability absolute error. 0 means no target: auto then always
	// selects r2t. The chooser compares the target against data-independent
	// worst-case bounds — r2t's instance error is typically far smaller.
	ErrorTarget float64
	// FixedTau (Mechanism "fixed-tau" only) is the truncation threshold; 0
	// means GS_Q. Must lie in (0, GSQ].
	FixedTau float64
	// DisableFastPath opts out of the closed-form partition truncator, which
	// replaces the LP when each join result's provenance names at most one
	// individual. The fast path is bit-identical to the LP on every released
	// value — the equivalence gates enforce this — so the knob exists for
	// those gates and for perf isolation, not for correctness.
	DisableFastPath bool
}

// Validate checks the parameter invariants the mechanism will enforce,
// without evaluating anything. It is the single authority on what makes
// Options well-formed: Query, QueryWithBudget and the r2td server all call
// it up front, so no invalid-option request can reach a budget charge. (The
// mechanism core re-checks defensively; both sides must agree.)
func (opt Options) Validate() error {
	if opt.Epsilon <= 0 {
		return fmt.Errorf("r2t: ε must be positive, got %g", opt.Epsilon)
	}
	if opt.GSQ < 2 {
		return fmt.Errorf("r2t: GS_Q must be at least 2, got %g", opt.GSQ)
	}
	if opt.Beta < 0 || opt.Beta >= 1 {
		return fmt.Errorf("r2t: β must be in (0,1), or 0 for the default, got %g", opt.Beta)
	}
	if opt.Naive && opt.AllowNegativeSum {
		return fmt.Errorf("r2t: Naive and AllowNegativeSum are mutually exclusive (the signed split requires the LP operator)")
	}
	if len(opt.Primary) == 0 {
		return fmt.Errorf("r2t: at least one primary private relation is required")
	}
	if !mech.ValidMechanism(opt.Mechanism) {
		return fmt.Errorf("r2t: unknown mechanism %q (want auto, r2t, laplace, fixed-tau or ls)", opt.Mechanism)
	}
	if opt.Naive && opt.Mechanism != "" && opt.Mechanism != mech.MechR2T {
		return fmt.Errorf("r2t: Naive applies to the r2t mechanism only, not %q", opt.Mechanism)
	}
	if opt.ErrorTarget < 0 {
		return fmt.Errorf("r2t: ErrorTarget must be non-negative, got %g", opt.ErrorTarget)
	}
	if opt.ErrorTarget > 0 && opt.Mechanism != mech.MechAuto {
		return fmt.Errorf("r2t: ErrorTarget requires Mechanism \"auto\" (got %q)", opt.Mechanism)
	}
	if opt.FixedTau != 0 {
		if opt.Mechanism != mech.MechFixedTau {
			return fmt.Errorf("r2t: FixedTau requires Mechanism \"fixed-tau\" (got %q)", opt.Mechanism)
		}
		if opt.FixedTau < 0 || opt.FixedTau > opt.GSQ {
			return fmt.Errorf("r2t: FixedTau %g outside (0, GSQ=%g]", opt.FixedTau, opt.GSQ)
		}
	}
	return nil
}
