#!/bin/sh
# Full pre-merge gate: formatting, vet, build, and the whole test suite under
# the race detector (the parallel core.Run races and the pooled LP workspaces
# are the code this exists to police). Run from the repo root:
#
#	./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...

echo "check.sh: all green"
