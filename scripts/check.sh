#!/bin/sh
# Full pre-merge gate: formatting, vet, build, and the whole test suite under
# the race detector (the parallel core.Run races and the pooled LP workspaces
# are the code this exists to police). Run from the repo root:
#
#	./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
# -shuffle=on randomizes test (and subtest-parent) execution order so
# accidental inter-test coupling — a package-level cache warmed by an earlier
# test, say — fails loudly instead of riding on source order.
go test -race -shuffle=on ./...

# Robustness gate, named explicitly so a failure is attributable at a glance
# (these also ran inside the full suite above): the ledger crash-recovery
# chaos test, the server fault-injection scenarios, and the ledger-replay
# fuzz seed corpus, all under the race detector. The R2T_FAULTS spec arms an
# inert hit counter, proving the env-var chaos grammar parses and arms in a
# real test binary without perturbing any assertion.
R2T_FAULTS='ci.smoke=err,errno=EIO,on=-1' go test -race \
	-run 'TestChaos|TestServerFsync|TestServerReadyz|TestServerLPPanic|TestServerPanicInLeader|TestServerDegraded|TestServerSaturation|FuzzOpenLedger' \
	./internal/server/
go test -race -run 'TestDegrade|TestPanic|TestAllRacesFailed|TestCoreRaceFaultSite' ./internal/core/ ./internal/fault/

# Executor equivalence gate, named explicitly (these also ran inside the
# full suite above): the optimized join executor must reproduce the frozen
# baseline bit-for-bit — row order, ψ bits, provenance refs, projection
# groups — at every worker count, and the single-join group-by must be
# indistinguishable from per-group runs, all under the race detector
# (DESIGN.md §10).
go test -race -run 'TestExecEquivalence|TestExecWorkers|TestExecSmallSide|TestIndexCache|TestRunPartitioned' ./internal/exec/
go test -race -run 'TestQueryExecWorkers|TestQueryGroupByExecWorkers|TestQueryGroupBySingleJoin|TestQueryGroupByDuplicate' .

# Join-sharing equivalence gate, named explicitly (these also ran inside the
# full suite above): the shared join core must hand every aggregate the
# bit-identical result of its own probe pass (exec level and released-answer
# level), concurrent mixed-aggregate queries must coalesce to at most one
# probe pass per (core, version) even interleaved with Append, and the r2td
# server must release identical estimates with sharing on or off — all under
# the race detector (DESIGN.md §12).
go test -race -run 'TestCoreBuildEquivalence|TestCoreSplitResultEquivalence|TestCorePartitionedResultEquivalence|TestCoreRejectsMismatchedPlan|TestCoreCache' ./internal/exec/
go test -race -run 'TestJoinSignature' ./internal/plan/
go test -race -run 'TestShareWorkloads' ./internal/experiments/
go test -race -run 'TestJoinShare|TestQueryBatch' .
go test -race -run 'TestServerJoinShare|TestAnswerCache' ./internal/server/

# Profiler gate, named explicitly (these also ran inside the full suite
# above): a disabled recorder must stay allocation-free on every hot path —
# profiling is always-on in r2td, so a nil-recorder regression is a tax on
# every query — and turning profiling ON must leave the released estimate
# bit-identical (profiling is pure observation, DESIGN.md §11).
go test -race -run 'TestRecorderDisabledAllocFree|TestRecorderConcurrent' ./internal/obs/
go test -race -run 'TestProfileBitIdenticalEstimate|TestProfileStagesSumWithinDuration|TestConcurrentAppendQuery' .

# Durable-storage gate, named explicitly (these also ran inside the full
# suite above): WAL record/header round-trip and corruption rejection, the
# segstore bootstrap/replay/torn-tail/poisoning scenarios, the 30-epoch
# crash-recovery chaos test (recovered tables are an exact prefix and serve
# bitwise-identical answers to a never-crashed twin), concurrent durable
# appends against Query/QueryBatch, the incremental index-extension
# equivalence suite (extended == freshly built, version-tag monotonicity),
# and the r2td restart-from-torn-WAL acceptance test — all under the race
# detector (DESIGN.md §13).
go test -race ./internal/segstore/
go test -race -run 'TestAppend|TestInsertChecked|TestCSV' ./internal/storage/
go test -race -run 'TestIndexExtend|TestExtendedIndexServedOnQueries' ./internal/exec/
go test -race -run 'TestServerDurableAppendRecovery' ./internal/server/

# Replication gate, named explicitly (these also ran inside the full suite
# above): the whole repl package (wire-format round-trip, hub/client
# integration, and the FuzzReplFrame seed corpus — arbitrary bytes never
# panic, never over-allocate, never apply past a failed CRC), the 30-epoch
# primary/replica failover chaos suite (injected fsync failures, torn
# writes, partitions, and mid-append panics; after every kill the replica's
# ledger must be a bitwise prefix of the dead primary's, every admitted
# charge must survive into the final ledger, and spend may only overcount),
# the catch-up/promotion/fencing acceptance scenario, the Retry-After and
# append-idempotency satellites, and the ledger mirror contract — all under
# the race detector (DESIGN.md §14).
go test -race ./internal/repl/
go test -race -run 'TestChaosFailoverPromotion|TestReplicationCatchUpServeAndPromote|TestRetryAfterOnEvery503|TestAppendIdempotency|TestAppendDedupUnit|TestLedgerMirrorContract' ./internal/server/

# Mechanisms gate, named explicitly (these also ran inside the full suite
# above): the closed-form partition truncator must be bit-identical to the
# simplex pipeline — structurally (randomized occurrence instances, both the
# integer-exact and emulation regimes) and end to end (seeded released
# answers with the fast path on vs off) — the mechanism chooser must be a
# data-independent pure function of the query shape and public parameters
# (neighboring datasets select identically), the baseline backends must pass
# their structural applicability rules, and no inapplicable or invalid
# mechanism request may ever charge ε (engine QueryWithBudget and the r2td
# pre-charge check), all under the race detector (DESIGN.md §15).
go test -race -run 'TestPartition' ./internal/truncation/
go test -race -run 'TestChoose|TestValidMechanism|TestErrorBounds|TestCostModel' ./internal/mech/
go test -race -run 'TestPartitionFastPath|TestMechanism|TestChooserDataIndependence|TestBudgetNotChargedForInapplicableMechanism' .
go test -race -run 'TestServerMechanismSelection|TestServerDatasetDefaultMechanism|TestServerInvalidDefaultMechanism' ./internal/server/

# Sharding gate, named explicitly (these also ran inside the full suite
# above): the shard package (routing classification, owner-hash stability,
# wire round-trip, pool scatter/hedge/retry), the partial-merge unit suite
# and the randomized library-level sharded-vs-unsharded bit-equality sweep
# (COUNT/SUM, group-by, signed splits over 1/2/4 shards), the router-tier
# acceptance tests (HTTP bit-equality against an unsharded twin, append
# routing with X-R2T-Shard, charge-free structural gates, charge-stands-on-
# scatter-failure), the 30-epoch kill-a-shard-mid-query chaos gate (one
# ledger record per admitted request, spent ε exact and within budget,
# 503 + Retry-After on failed scatters, every successful release bit-equal
# to the twin), and the redirect/retry satellites (always-set X-R2T-Primary
# on replica 409s, lag-scaled Retry-After, deterministic NodeName fallback)
# — all under the race detector (DESIGN.md §16).
go test -race ./internal/shard/
go test -race -run 'TestPartial|TestMergedPartition' ./internal/truncation/
go test -race -run 'TestShardedEquivalenceRandomized|TestPartialsGates' .
go test -race -run 'TestShardedEquivalence|TestRouterAppendRouting|TestRouterGates|TestRouterChargeOnScatterFailure|TestChaosShardKill|TestRetryAfterForLag|TestDefaultNodeName' ./internal/server/

# Benchmark-compile smoke: every benchmark builds and runs one iteration,
# so BENCH_*.json regeneration can't silently rot.
go test -run=NONE -bench=. -benchtime=1x ./...

echo "check.sh: all green"
