package r2t

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"r2t/internal/core"
	"r2t/internal/mech"
	"r2t/internal/shard"
	"r2t/internal/truncation"
)

// buildShardedShop generates one seeded shop instance twice: as a single
// unsharded DB and as nShards shard-local DBs populated through the shard
// routing rules (partitioned rows on their owner, broadcast rows everywhere).
func buildShardedShop(t *testing.T, rng *rand.Rand, nShards int) (*DB, []*DB) {
	t.Helper()
	s := MustSchema(
		&Relation{Name: "Catalog", Attrs: []string{"sku"}, PK: "sku"},
		&Relation{Name: "Customer", Attrs: []string{"CK", "region"}, PK: "CK"},
		&Relation{Name: "Orders", Attrs: []string{"OK", "CK", "sku", "price"}, PK: "OK",
			FKs: []FK{{Attr: "CK", Ref: "Customer"}, {Attr: "sku", Ref: "Catalog"}}},
	)
	routing, err := shard.NewRouting(s, "Customer")
	if err != nil {
		t.Fatal(err)
	}
	full := NewDB(s)
	shards := make([]*DB, nShards)
	for i := range shards {
		shards[i] = NewDB(s)
	}
	insert := func(rel string, vals ...Value) {
		t.Helper()
		if err := full.Insert(rel, vals...); err != nil {
			t.Fatal(err)
		}
		owner, bc, err := routing.RouteRow(rel, vals, nShards)
		if err != nil {
			t.Fatal(err)
		}
		if bc {
			for _, sdb := range shards {
				if err := sdb.Insert(rel, vals...); err != nil {
					t.Fatal(err)
				}
			}
			return
		}
		if err := shards[owner].Insert(rel, vals...); err != nil {
			t.Fatal(err)
		}
	}
	const nSKU = 8
	for sku := int64(0); sku < nSKU; sku++ {
		insert("Catalog", Int(sku))
	}
	regions := []string{"EU", "US", "APAC"}
	ok := int64(0)
	for c := int64(0); c < 60; c++ {
		insert("Customer", Int(c), Str(regions[rng.Intn(len(regions))]))
		for o, n := 0, rng.Intn(5); o < n; o++ {
			insert("Orders", Int(ok), Int(c), Int(rng.Int63n(nSKU)), Int(rng.Int63n(101)-20))
			ok++
		}
	}
	if err := full.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for i, sdb := range shards {
		if err := sdb.CheckIntegrity(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return full, shards
}

// mergedUnits evaluates partialsOf on every shard and merges unit-by-unit:
// the router's gather step, minus the wire.
func mergedUnits(t *testing.T, shards []*DB, partialsOf func(*DB) (*QueryPartials, error)) []*truncation.MergedPartition {
	t.Helper()
	perShard := make([]*QueryPartials, len(shards))
	for i, sdb := range shards {
		qp, err := partialsOf(sdb)
		if err != nil {
			t.Fatalf("shard %d partials: %v", i, err)
		}
		perShard[i] = qp
	}
	n := len(perShard[0].Units)
	for i, qp := range perShard {
		if len(qp.Units) != n || qp.Signed != perShard[0].Signed {
			t.Fatalf("shard %d unit shape diverges: %d units signed=%v, shard 0 has %d signed=%v",
				i, len(qp.Units), qp.Signed, n, perShard[0].Signed)
		}
	}
	out := make([]*truncation.MergedPartition, n)
	for k := 0; k < n; k++ {
		parts := make([]*Partial, len(perShard))
		for i, qp := range perShard {
			parts[i] = qp.Units[k]
		}
		m, err := MergePartials(parts)
		if err != nil {
			t.Fatalf("merging unit %d: %v", k, err)
		}
		out[k] = m
	}
	return out
}

// releaseMerged runs the r2t backend over one merged operator, exactly as
// privatize does for the unsharded twin.
func releaseMerged(t *testing.T, m *truncation.MergedPartition, opt Options) float64 {
	t.Helper()
	be, ok := mech.ByName(mech.MechR2T)
	if !ok {
		t.Fatal("no r2t backend")
	}
	out, err := be.Run(m, mech.Params{
		Epsilon:   opt.Epsilon,
		GSQ:       opt.GSQ,
		Beta:      opt.Beta,
		Noise:     opt.Noise,
		EarlyStop: opt.EarlyStop,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out.Estimate
}

// releaseMergedSigned mirrors privatizeSigned: each half at ε/2, positive
// first, both off the same noise source.
func releaseMergedSigned(t *testing.T, pos, neg *truncation.MergedPartition, opt Options) float64 {
	t.Helper()
	cfg := core.Config{
		Epsilon:   opt.Epsilon / 2,
		Beta:      opt.Beta,
		GSQ:       opt.GSQ,
		Noise:     opt.Noise,
		EarlyStop: opt.EarlyStop,
	}
	outPos, err := core.Run(pos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outNeg, err := core.Run(neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return outPos.Estimate - outNeg.Estimate
}

// bitEqual requires exact floating-point identity, the sharding invariant for
// integer-ψ workloads (DESIGN.md §16).
func bitEqual(t *testing.T, label string, sharded, twin float64) {
	t.Helper()
	if math.Float64bits(sharded) != math.Float64bits(twin) {
		t.Errorf("%s: sharded release %v != unsharded %v (bits %x vs %x)",
			label, sharded, twin, math.Float64bits(sharded), math.Float64bits(twin))
	}
}

// TestShardedEquivalenceRandomized: seeded SJA workloads — COUNT, filtered
// SUM through a broadcast join, a signed-split SUM, and group-by in both
// flavors — over 1, 2 and 4 shards. With paired seeded noise sources the
// merged-partial release must be bitwise equal to the unsharded twin.
func TestShardedEquivalenceRandomized(t *testing.T) {
	const (
		countQ  = `SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.CK`
		sumQ    = `SELECT SUM(o.price) FROM Customer c, Orders o, Catalog g WHERE c.CK = o.CK AND o.sku = g.sku AND o.price > 0`
		signedQ = `SELECT SUM(o.price) FROM Customer c, Orders o WHERE c.CK = o.CK`
	)
	groups := []Value{Str("EU"), Str("US"), Str("APAC")}
	for _, nShards := range []int{1, 2, 4} {
		for seed := int64(0); seed < 6; seed++ {
			full, shards := buildShardedShop(t, rand.New(rand.NewSource(seed)), nShards)
			base := Options{GSQ: 4096, Primary: []string{"Customer"}, EarlyStop: true}
			noiseSeed := 1000*seed + int64(nShards)

			// Every workload must clear the router's static shardability gate.
			cols := map[string]string{"Customer": "CK", "Orders": "CK"}
			for _, q := range []string{countQ, sumQ, signedQ} {
				if err := full.ShardCheck(q, base.Primary, "Customer", cols); err != nil {
					t.Fatalf("ShardCheck(%s): %v", q, err)
				}
			}

			// COUNT.
			opt := base
			opt.Epsilon = 1
			opt.Noise = NewNoiseSource(noiseSeed)
			twin, err := full.Query(countQ, opt)
			if err != nil {
				t.Fatal(err)
			}
			units := mergedUnits(t, shards, func(sdb *DB) (*QueryPartials, error) {
				return sdb.Partials(context.Background(), countQ, opt)
			})
			if len(units) != 1 {
				t.Fatalf("count query has %d units", len(units))
			}
			if units[0].TrueAnswer() != twin.TrueAnswer {
				t.Fatalf("merged true answer %g != twin %g", units[0].TrueAnswer(), twin.TrueAnswer)
			}
			opt.Noise = NewNoiseSource(noiseSeed)
			bitEqual(t, "count", releaseMerged(t, units[0], opt), twin.Estimate)

			// Filtered SUM through the broadcast Catalog join.
			opt = base
			opt.Epsilon = 2
			opt.Noise = NewNoiseSource(noiseSeed + 1)
			twin, err = full.Query(sumQ, opt)
			if err != nil {
				t.Fatal(err)
			}
			units = mergedUnits(t, shards, func(sdb *DB) (*QueryPartials, error) {
				return sdb.Partials(context.Background(), sumQ, opt)
			})
			opt.Noise = NewNoiseSource(noiseSeed + 1)
			bitEqual(t, "sum", releaseMerged(t, units[0], opt), twin.Estimate)

			// Signed split: ε/2 per half, positive then negative.
			opt = base
			opt.Epsilon = 2
			opt.AllowNegativeSum = true
			opt.Noise = NewNoiseSource(noiseSeed + 2)
			twin, err = full.Query(signedQ, opt)
			if err != nil {
				t.Fatal(err)
			}
			units = mergedUnits(t, shards, func(sdb *DB) (*QueryPartials, error) {
				return sdb.Partials(context.Background(), signedQ, opt)
			})
			if len(units) != 2 {
				t.Fatalf("signed query has %d units", len(units))
			}
			opt.Noise = NewNoiseSource(noiseSeed + 2)
			bitEqual(t, "signed", releaseMergedSigned(t, units[0], units[1], opt), twin.Estimate)

			// Group-by: per-group ε, groups released in order off one source.
			opt = base
			opt.Epsilon = 3
			opt.Noise = NewNoiseSource(noiseSeed + 3)
			gout, err := full.QueryGroupBy(countQ, "c.region", groups, opt)
			if err != nil {
				t.Fatal(err)
			}
			units = mergedUnits(t, shards, func(sdb *DB) (*QueryPartials, error) {
				return sdb.GroupPartials(context.Background(), countQ, "c.region", groups, opt)
			})
			if len(units) != len(groups) {
				t.Fatalf("group-by has %d units, want %d", len(units), len(groups))
			}
			perGroup := opt
			perGroup.Epsilon = opt.Epsilon / float64(len(groups))
			perGroup.Noise = NewNoiseSource(noiseSeed + 3)
			for k := range groups {
				bitEqual(t, "group "+groups[k].S, releaseMerged(t, units[k], perGroup), gout[k].Answer.Estimate)
			}

			// Signed group-by: (positive, negative) unit pairs per group.
			opt = base
			opt.Epsilon = 3
			opt.AllowNegativeSum = true
			opt.Noise = NewNoiseSource(noiseSeed + 4)
			gout, err = full.QueryGroupBy(signedQ, "c.region", groups, opt)
			if err != nil {
				t.Fatal(err)
			}
			units = mergedUnits(t, shards, func(sdb *DB) (*QueryPartials, error) {
				return sdb.GroupPartials(context.Background(), signedQ, "c.region", groups, opt)
			})
			if len(units) != 2*len(groups) {
				t.Fatalf("signed group-by has %d units, want %d", len(units), 2*len(groups))
			}
			perGroup = opt
			perGroup.Epsilon = opt.Epsilon / float64(len(groups))
			perGroup.Noise = NewNoiseSource(noiseSeed + 4)
			for k := range groups {
				got := releaseMergedSigned(t, units[2*k], units[2*k+1], perGroup)
				bitEqual(t, "signed group "+groups[k].S, got, gout[k].Answer.Estimate)
			}
		}
	}
}

// TestPartialsGates: the partial-producing entry points reject the shapes the
// router must never scatter.
func TestPartialsGates(t *testing.T) {
	full, _ := buildShardedShop(t, rand.New(rand.NewSource(1)), 1)
	opt := Options{Epsilon: 1, GSQ: 64, Primary: []string{"Customer"}}
	ctx := context.Background()
	badMech := opt
	badMech.Mechanism = "laplace"
	if _, err := full.Partials(ctx, `SELECT COUNT(*) FROM Orders`, badMech); err == nil {
		t.Error("non-r2t mechanism must not produce partials")
	}
	if _, err := full.Partials(ctx, `SELECT COUNT(DISTINCT o.CK) FROM Orders o`, opt); err == nil {
		t.Error("projection query must not produce partials")
	}
	if err := full.ShardCheck(`SELECT COUNT(*) FROM Catalog`, opt.Primary, "Customer",
		map[string]string{"Customer": "CK", "Orders": "CK"}); err == nil {
		t.Error("query without the partition relation must fail ShardCheck")
	}
	// Orders joined on a non-partition column spans shards.
	if err := full.ShardCheck(`SELECT COUNT(*) FROM Customer c, Orders o WHERE c.CK = o.OK`,
		opt.Primary, "Customer", map[string]string{"Customer": "CK", "Orders": "CK"}); err == nil {
		t.Error("join result spanning shards must fail ShardCheck")
	}
}
